//! The event vocabulary.
//!
//! One variant per `FrontendMetrics` counter bump, plus
//! observability-only variants (lookup outcomes, fill shapes, array
//! occupancy) that carry detail the aggregate counters cannot express.
//! Events are small `Copy` values so the hot emit path never
//! allocates.

/// What kind of cycle just closed.
///
/// Every `Frontend::step` emits exactly one [`Event::Cycle`] as its
/// *last* event; all events since the previous `Cycle` belong to the
/// cycle it closes. The three kinds partition total cycles:
/// `cycles == build_cycles + delivery_cycles + stall_cycles`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleKind {
    /// A build-mode cycle: the IC + BTB + decoder pipeline advanced.
    Build,
    /// A delivery-mode cycle: uops drained from the cached structure.
    Delivery,
    /// A stall cycle: a miss or mispredict penalty burned, or a mode
    /// switch consumed the slot.
    Stall,
}

/// Where a fetch group's uops came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UopSource {
    /// Delivered from the cached structure (uop cache / TC / BBTC / XBC).
    Structure,
    /// Decoded on the build path (instruction cache + decoder).
    Ic,
}

/// Which way a branch prediction failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MispredictKind {
    /// Conditional direction mispredict.
    Cond,
    /// Target mispredict (indirect, return, or a stale/merged pointer).
    Target,
}

/// Why delivery mode gave up and switched back to build mode.
///
/// Exactly one cause accompanies every delivery→build switch, so the
/// per-cause counters sum to `delivery_to_build` (the d2b-sum
/// invariant, checked by `XbcInvariants::check_metrics`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum D2bCause {
    /// XBTB lookup missed while resolving the next-XB pointer.
    XbtbMiss,
    /// No successor pointer was available (cold entry or unresolved end).
    NoPointer,
    /// The successor pointer was stale: it named uops the array no
    /// longer holds in that shape.
    StalePointer,
    /// The XBC array itself missed (or the fetch budget was exhausted
    /// with nothing accepted).
    ArrayMiss,
    /// A return mispredict with no cached recovery path.
    Return,
    /// An indirect-branch mispredict with no cached recovery path.
    Indirect,
    /// The fetched (merged) XB diverged from the committed path
    /// mid-block — a misfetch, not a structure miss.
    Misfetch,
    /// A non-XBC structure miss (uop cache / TC / BBTC lookup failed).
    StructureMiss,
}

/// Which pointer structure a lookup probed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupKind {
    /// The XB target buffer (per-XB successor pointers).
    Xbtb,
    /// The indirect-target XBTB.
    Xibtb,
    /// The return-stack buffer of XB pointers.
    Xrsb,
}

/// How the fill unit's completed XB landed in the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillKind {
    /// A brand-new XB; fresh lines were allocated.
    Fresh,
    /// Fully contained in an existing XB; no storage written.
    Contained,
    /// Extended an existing XB in place.
    Extended,
    /// Stored as an additional "complex" copy next to a same-tag XB.
    Complex,
}

/// One cycle-level trace event.
///
/// The first group of variants mirrors `FrontendMetrics` bit-for-bit
/// (see `FrontendMetrics::apply_event`); the second group
/// (`Lookup` / `Fill` / `Eviction` / `Occupancy`) is observability
/// detail with no aggregate-counter effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A cycle closed. Always the last event a step emits.
    Cycle(CycleKind),
    /// `n` uops were handed to the renamer this cycle.
    Uops {
        /// Supply path the uops came from.
        src: UopSource,
        /// Uop count (bounded by the renamer width).
        n: u16,
    },
    /// A branch mispredicted and the penalty was charged.
    Mispredict(MispredictKind),
    /// Delivery mode switched back to build mode.
    SwitchToBuild(D2bCause),
    /// Build mode switched (back) to delivery mode.
    SwitchToDelivery,
    /// The cached structure missed on its leading lookup.
    StructureMiss,
    /// An XBC bank conflict deferred part of the fetch group.
    BankConflict {
        /// Uops pushed into the next fetch cycle.
        deferred: u16,
    },
    /// A set search for an alternative XB copy ran (XBC repair path).
    SetSearch {
        /// Whether a usable copy was found.
        hit: bool,
    },
    /// An XB was promoted to merge-eligible.
    Promotion,
    /// A promoted XB was demoted (its merges were discarded).
    Depromotion,
    /// A pointer-structure lookup resolved. Observability only.
    Lookup {
        /// Which structure was probed.
        what: LookupKind,
        /// Whether it produced a usable entry.
        hit: bool,
    },
    /// The fill unit installed a completed XB. Observability only.
    Fill {
        /// How the install landed in the array.
        kind: FillKind,
        /// Uop length of the completed XB.
        uops: u16,
        /// Bank mask bits the stored XB occupies.
        banks: u8,
    },
    /// An install evicted valid lines. Observability only.
    Eviction {
        /// Number of lines evicted by this install.
        lines: u16,
    },
    /// Array occupancy snapshot after an install. Observability only.
    Occupancy {
        /// Valid lines in the array.
        lines: u32,
        /// Stored uops in the array.
        uops: u32,
    },
}

/// Narrows a count to an event's `u16` payload field.
///
/// Event counts come from `usize` arithmetic (delivered uops, deferred
/// uops, evicted lines); a plain `as u16` cast would silently wrap on
/// configurations wider than 65535 (e.g. a pathological fuzz config's
/// renamer width) and corrupt every downstream counter. Overflow is a
/// config bug, so debug builds assert; release builds saturate, which
/// at worst under-counts instead of wrapping to a small value.
#[inline]
pub fn saturate_u16(n: usize) -> u16 {
    debug_assert!(n <= u16::MAX as usize, "event count {n} exceeds the u16 payload");
    n.try_into().unwrap_or(u16::MAX)
}

impl Event {
    /// Whether this event affects `FrontendMetrics` when folded
    /// (`false` for the observability-only variants).
    pub fn is_metric(&self) -> bool {
        !matches!(
            self,
            Event::Lookup { .. }
                | Event::Fill { .. }
                | Event::Eviction { .. }
                | Event::Occupancy { .. }
        )
    }
}
