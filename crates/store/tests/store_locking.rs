//! Regression tests for stale-lock stealing.
//!
//! The original steal path deleted a stale lock file in place and
//! re-entered the `create_new` loop. Two contenders could both judge
//! the same lock stale; the first then deleted it and created a fresh
//! lock, and the second's delayed delete removed the *fresh* lock —
//! leaving two processes convinced they hold the entry. The fix steals
//! by atomically renaming the stale file to a unique tombstone first:
//! rename succeeds for exactly one contender, and losers only ever
//! retry the create, never delete.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, SystemTime};
use xbc_store::EntryLock;

/// Unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "xbc-store-locking-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// Plants a lock file whose mtime lies `age` in the past.
fn plant_stale_lock(path: &PathBuf, age: Duration) {
    fs::write(path, "0").unwrap();
    let f = fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_modified(SystemTime::now() - age).unwrap();
}

#[test]
fn stale_lock_is_stolen_and_acquired() {
    let s = Scratch::new("steal");
    let entry = s.0.join("entry.xbr");
    let lock_path = s.0.join("entry.xbr.lock");
    // Well past LOCK_STALE_MS (10 s): the holder is presumed dead.
    plant_stale_lock(&lock_path, Duration::from_secs(60));
    let lock = EntryLock::acquire(&entry);
    assert!(lock.held, "a stale lock must be stolen, not waited out");
    assert!(lock_path.exists(), "the stealer re-creates the lock file");
    // The steal must not leave its rename tombstone behind.
    let debris: Vec<_> = fs::read_dir(&s.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".stale-"))
        .collect();
    assert!(debris.is_empty(), "steal left tombstones behind: {debris:?}");
    drop(lock);
    assert!(!lock_path.exists(), "release removes the stolen-and-held lock");
}

#[test]
fn fresh_lock_is_not_stolen() {
    let s = Scratch::new("fresh");
    let entry = s.0.join("entry.xbr");
    let lock_path = s.0.join("entry.xbr.lock");
    // A young lock (well under LOCK_STALE_MS) belongs to a live holder.
    plant_stale_lock(&lock_path, Duration::from_secs(0));
    let lock = EntryLock::acquire(&entry);
    assert!(!lock.held, "a fresh foreign lock must be waited out, not stolen");
    assert!(lock_path.exists(), "the foreign lock file must survive the timeout");
}

/// The TOCTOU regression itself: many contenders race to steal one
/// stale lock. With delete-in-place stealing, a slow contender's delete
/// could remove the fresh lock a fast contender had just created, so
/// two threads would end up inside the critical section at once. The
/// rename-first steal admits exactly one winner; while any thread holds
/// the lock, its file must exist and no second thread may hold it.
#[test]
fn concurrent_stealers_admit_exactly_one_holder() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let s = Scratch::new("race");
    let entry = s.0.join("entry.xbr");
    let lock_path = s.0.join("entry.xbr.lock");
    for _ in 0..ROUNDS {
        plant_stale_lock(&lock_path, Duration::from_secs(60));
        let in_section = AtomicU64::new(0);
        let start = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    start.wait();
                    let lock = EntryLock::acquire(&entry);
                    if lock.held {
                        let inside = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        assert_eq!(inside, 1, "two threads hold the same entry lock");
                        assert!(
                            lock_path.exists(),
                            "the lock file vanished while held (a racing stealer deleted it)"
                        );
                        std::thread::sleep(Duration::from_millis(2));
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        fs::remove_file(&lock_path).ok();
    }
}
