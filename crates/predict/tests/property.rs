//! Seeded property tests for the promotion bias counter and the return
//! stack: random operation sequences checked against simple reference
//! models and the paper's §3.8 promotion semantics.

use xbc_predict::{Bias, BiasCounter, ReturnStack};
use xbc_workload::Rng64;

/// Reference model for the saturating bias counter: just clamp a wide
/// integer. Any disagreement with the 7-bit hardware counter is a bug.
#[derive(Clone, Copy)]
struct RefCounter {
    value: i64,
    updates: u64,
}

impl RefCounter {
    fn update(&mut self, taken: bool) {
        self.value = (self.value + if taken { 1 } else { -1 }).clamp(0, BiasCounter::MAX as i64);
        self.updates += 1;
    }

    fn bias(&self) -> Option<Bias> {
        if self.updates < BiasCounter::WARMUP as u64 {
            None
        } else if self.value >= BiasCounter::TAKEN_THRESHOLD as i64 {
            Some(Bias::Taken)
        } else if self.value <= BiasCounter::NOT_TAKEN_THRESHOLD as i64 {
            Some(Bias::NotTaken)
        } else {
            None
        }
    }
}

#[test]
fn bias_counter_matches_reference_on_random_streams() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xB1A5 + case);
        // Vary the taken probability per case so some streams promote,
        // some demote, and some hover around the midpoint.
        let p_taken = rng.gen::<f64>();
        let mut hw = BiasCounter::new();
        let mut model = RefCounter { value: 64, updates: 0 };
        for step in 0..2_000 {
            let taken = rng.gen::<f64>() < p_taken;
            hw.update(taken);
            model.update(taken);
            assert_eq!(
                hw.value() as i64,
                model.value,
                "case {case} step {step}: counter diverged from reference"
            );
            assert_eq!(hw.bias(), model.bias(), "case {case} step {step}: bias diverged");
        }
    }
}

#[test]
fn bias_counter_never_promotes_before_warmup() {
    let mut c = BiasCounter::new();
    for i in 0..BiasCounter::WARMUP {
        assert_eq!(c.bias(), None, "promoted after only {i} updates");
        c.update(true);
    }
    // 64 consecutive takens from the midpoint leave the counter one short
    // of the threshold (64 + 64 = 128, saturated to 127 ≥ 126): promoted.
    assert_eq!(c.bias(), Some(Bias::Taken));
}

#[test]
fn promotion_threshold_tolerates_exactly_one_dissent() {
    // Saturate taken, then dissent once: still promoted (126 ≥ threshold).
    let mut c = BiasCounter::new();
    for _ in 0..256 {
        c.update(true);
    }
    assert_eq!(c.value(), BiasCounter::MAX);
    c.update(false);
    assert_eq!(c.bias(), Some(Bias::Taken), "one dissent must not demote");
    // A second dissent drops below the threshold: demoted.
    c.update(false);
    assert_eq!(c.bias(), None, "two dissents must demote");
    // From 125, one taken update climbs back over the threshold.
    c.update(true);
    assert_eq!(c.bias(), Some(Bias::Taken));
}

#[test]
fn not_taken_promotion_is_symmetric() {
    let mut c = BiasCounter::new();
    for _ in 0..256 {
        c.update(false);
    }
    assert_eq!(c.value(), 0);
    assert_eq!(c.bias(), Some(Bias::NotTaken));
    c.update(true);
    assert_eq!(c.bias(), Some(Bias::NotTaken), "one dissent must not demote");
    c.update(true);
    assert_eq!(c.bias(), None, "two dissents must demote");
}

/// Reference model for the wrap-around return stack: an unbounded Vec
/// truncated from the *front* (oldest frames lost first) on overflow.
struct RefStack {
    frames: Vec<u64>,
    depth: usize,
    overflows: u64,
    underflows: u64,
}

impl RefStack {
    fn push(&mut self, v: u64) {
        if self.frames.len() == self.depth {
            self.frames.remove(0); // oldest frame is overwritten
            self.overflows += 1;
        }
        self.frames.push(v);
    }

    fn pop(&mut self) -> Option<u64> {
        let v = self.frames.pop();
        if v.is_none() {
            self.underflows += 1;
        }
        v
    }
}

#[test]
fn return_stack_matches_reference_under_random_call_return_interleavings() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xA110 + case);
        let depth = 1 + rng.uniform(12) as usize;
        let mut hw = ReturnStack::new(depth);
        let mut model = RefStack { frames: Vec::new(), depth, overflows: 0, underflows: 0 };
        // Skew the call/return ratio per case so some cases overflow
        // heavily, others underflow heavily.
        let p_call = 0.25 + 0.5 * rng.gen::<f64>();
        let mut next_id = 0u64;
        for step in 0..4_000 {
            if rng.gen::<f64>() < p_call {
                hw.push(next_id);
                model.push(next_id);
                next_id += 1;
            } else {
                let got = hw.pop();
                let want = model.pop();
                assert_eq!(got, want, "case {case} (depth {depth}) step {step}: pop diverged");
            }
            assert_eq!(hw.len(), model.frames.len(), "case {case} step {step}: length diverged");
            assert_eq!(hw.peek(), model.frames.last(), "case {case} step {step}: peek diverged");
            assert_eq!(hw.overflows(), model.overflows, "case {case} step {step}");
            assert_eq!(hw.underflows(), model.underflows, "case {case} step {step}");
        }
    }
}

#[test]
fn return_stack_clear_resets_contents_but_keeps_statistics() {
    let mut rsb = ReturnStack::new(4);
    for v in 0..6u64 {
        rsb.push(v); // two overflows
    }
    rsb.pop();
    rsb.clear();
    assert!(rsb.is_empty());
    assert_eq!(rsb.pop(), None);
    assert_eq!(rsb.overflows(), 2, "clear must not erase the overflow history");
    assert!(rsb.underflows() >= 1);
    // Still fully usable after the flush.
    rsb.push(9);
    assert_eq!(rsb.pop(), Some(9));
}
