//! Differential property test for the memoized assembly path.
//!
//! `XbcArray::assemble` memoizes unambiguous assemblies behind a per-set
//! structural generation and reuses scratch buffers; the allocating
//! `assemble_reference` recomputes from the tag array every call. Across
//! seeded random histories of inserts, extensions, fetches (which churn
//! the LRU stamps that order ambiguous candidates), and LRU demotions,
//! every probe must agree — a stale memo hit, a missed generation bump,
//! or dirty scratch state all show up as a divergence here.

use xbc::{BankMask, XbPtr, XbcArray, XbcConfig};
use xbc_isa::{Addr, BranchKind, Uop, UopId, UopKind};

/// splitmix64: tiny, seedable, hermetic (same idiom as the obs tests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn mk_uops(base: u64, len: usize) -> Vec<Uop> {
    (0..len as u64)
        .map(|i| Uop::new(UopId::new(Addr::new(base + i), 0), UopKind::Alu, true, BranchKind::None))
        .collect()
}

#[test]
fn memoized_assemble_matches_reference_across_random_histories() {
    for seed in 0..8u64 {
        let mut rng = Rng(0x5eed_0000 + seed);
        let cfg = XbcConfig { total_uops: 256, ..XbcConfig::default() };
        let mut a = XbcArray::new(&cfg);
        let width = a.banks() * a.line_uops();
        // IPs drawn from a small pool so re-inserts of the same tag (the
        // ambiguous, non-memoizable case) happen regularly.
        let ip_of = |r: &mut Rng| Addr::new(0x1000 + r.below(48) * 8);
        let mut known: Vec<(Addr, usize)> = Vec::new();

        for step in 0..400 {
            match rng.below(6) {
                0 => {
                    // Insert: structural — the set's generation must bump
                    // (that is what invalidates its memoized assemblies).
                    let ip = ip_of(&mut rng);
                    let len = 1 + rng.below(width as u64) as usize;
                    let (set, _) = a.set_and_tag(ip);
                    let gen = a.generation(set);
                    a.insert(ip, &mk_uops(ip.raw() << 8, len), 0, BankMask::EMPTY, BankMask::EMPTY);
                    assert!(a.generation(set) > gen, "insert must invalidate set {set}'s memo");
                    known.push((ip, len));
                }
                1 if !known.is_empty() => {
                    // Fetch: bumps LRU stamps without structural change —
                    // the memo must survive this, ambiguous results must
                    // still track the new stamps.
                    let (ip, _) = known[rng.below(known.len() as u64) as usize];
                    let (set, tag) = a.set_and_tag(ip);
                    if let Some(asm) = a.assemble(set, tag, None) {
                        let ptr = XbPtr::new(ip, Addr::new(0), asm.mask, asm.total_uops as u8);
                        let mut used = BankMask::EMPTY;
                        let _ = a.fetch_one(&ptr, &mut used);
                    }
                }
                2 if !known.is_empty() => {
                    let (ip, _) = known[rng.below(known.len() as u64) as usize];
                    let (set, _) = a.set_and_tag(ip);
                    let gen = a.generation(set);
                    a.demote_lru(ip);
                    assert!(a.generation(set) > gen, "demote_lru must invalidate set {set}'s memo");
                }
                3 if !known.is_empty() => {
                    let i = rng.below(known.len() as u64) as usize;
                    let (ip, len) = known[i];
                    let (set, tag) = a.set_and_tag(ip);
                    if let Some(asm) = a.assemble(set, tag, None) {
                        let extra = 1 + rng.below(4) as usize;
                        if asm.total_uops == len && len + extra <= width {
                            let gen = a.generation(set);
                            a.extend(ip, &asm, &mk_uops(ip.raw() << 8, extra), BankMask::EMPTY);
                            assert!(
                                a.generation(set) > gen,
                                "extend must invalidate set {set}'s memo"
                            );
                            known[i].1 += extra;
                        }
                    }
                }
                4 if !known.is_empty() => {
                    // Conflicted fetch: pre-claiming one of the XB's banks
                    // forces a Partial fetch, charging the blocked line's
                    // conflict counter; past the threshold dynamic
                    // placement relocates the line (slot swap) — a
                    // structural change that must bump the generation.
                    let (ip, _) = known[rng.below(known.len() as u64) as usize];
                    let (set, tag) = a.set_and_tag(ip);
                    if let Some(asm) = a.assemble(set, tag, None) {
                        let ptr = XbPtr::new(ip, Addr::new(0), asm.mask, asm.total_uops as u8);
                        let mut used = BankMask::single(asm.lines[0].0 as usize);
                        let gen = a.generation(set);
                        let relocs = a.stats().relocations;
                        let _ = a.fetch_one(&ptr, &mut used);
                        if a.stats().relocations > relocs {
                            assert!(
                                a.generation(set) > gen,
                                "relocation must invalidate set {set}'s memo"
                            );
                        }
                    }
                }
                5 if !known.is_empty() => {
                    // Set search must agree with the reference assembly:
                    // the repaired mask is the banks of the entry window's
                    // lines, or None when the window cannot be covered.
                    let (ip, _) = known[rng.below(known.len() as u64) as usize];
                    let (set, tag) = a.set_and_tag(ip);
                    let offset = 1 + rng.below(width as u64) as u8;
                    let expected = a.assemble_reference(set, tag, None).and_then(|asm| {
                        if asm.total_uops < offset as usize {
                            return None;
                        }
                        let needed = (offset as usize).div_ceil(a.line_uops());
                        let mut m = BankMask::EMPTY;
                        for &(bank, _) in &asm.lines[..needed] {
                            m.insert(bank as usize);
                        }
                        Some(m)
                    });
                    assert_eq!(
                        a.set_search(ip, offset),
                        expected,
                        "set_search diverged from the reference at seed {seed} step {step}"
                    );
                }
                _ => {}
            }

            // Probe a few (set, tag, mask) points: mostly live tags, some
            // misses, with and without a bank-mask restriction.
            for probe in 0..4 {
                let ip = if known.is_empty() || rng.below(4) == 0 {
                    ip_of(&mut rng)
                } else {
                    known[rng.below(known.len() as u64) as usize].0
                };
                let (set, tag) = a.set_and_tag(ip);
                let within = if rng.below(3) == 0 {
                    None
                } else {
                    let mut m = BankMask::EMPTY;
                    for bank in 0..a.banks() {
                        if rng.below(2) == 0 {
                            m.insert(bank);
                        }
                    }
                    Some(m)
                };
                let reference = a.assemble_reference(set, tag, within);
                let memoized = a.assemble(set, tag, within);
                assert_eq!(
                    memoized, reference,
                    "divergence at seed {seed} step {step} probe {probe} \
                     (set {set}, tag {tag:#x}, within {within:?})"
                );
            }
        }
    }
}
