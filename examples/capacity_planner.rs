//! Capacity planning with the sweep engine: for a chosen workload, how
//! large must a trace cache be to match an XBC of a given size? Reproduces
//! the paper's ">50% more capacity" argument on one trace (§4).
//!
//! ```text
//! cargo run --release --example capacity_planner [trace-name]
//! ```

use xbc_sim::{FrontendSpec, Sweep};
use xbc_workload::standard_traces;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sys.access".to_owned());
    let spec = standard_traces().into_iter().find(|t| t.name == name).unwrap_or_else(|| {
        eprintln!("unknown trace {name}");
        std::process::exit(2);
    });

    let sizes = [4096usize, 8192, 16384, 32768, 65536];
    let mut frontends = Vec::new();
    for &s in &sizes {
        frontends.push(FrontendSpec::Tc { total_uops: s, ways: 4 });
        frontends.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    println!("sweeping {} across {:?} uops...", spec.name, sizes);
    let rows = Sweep::new(vec![spec], frontends, 300_000).run();

    println!();
    println!("{:>8} {:>10} {:>10}", "size", "tc-miss%", "xbc-miss%");
    let miss = |label: &str| -> Vec<(usize, f64)> {
        sizes
            .iter()
            .map(|&s| {
                let r = rows
                    .iter()
                    .find(|r| {
                        r.frontend.label().starts_with(label)
                            && r.frontend.label().contains(&format!("-{}k", s / 1024))
                    })
                    .expect("swept");
                (s, r.miss_rate)
            })
            .collect()
    };
    let tc = miss("tc");
    let xbc = miss("xbc");
    for ((s, t), (_, x)) in tc.iter().zip(&xbc) {
        println!("{:>7}K {:>9.2}% {:>9.2}%", s / 1024, 100.0 * t, 100.0 * x);
    }

    println!();
    for (s, x) in &xbc {
        match tc.iter().find(|(_, t)| t <= x) {
            Some((ts, _)) if ts > s => {
                println!(
                    "XBC @ {}K is only matched by a TC @ {}K — {}x the capacity",
                    s / 1024,
                    ts / 1024,
                    ts / s
                )
            }
            Some((ts, _)) => println!("XBC @ {}K matched by TC @ {}K", s / 1024, ts / 1024),
            None => println!("XBC @ {}K beats every swept TC size", s / 1024),
        }
    }
}
