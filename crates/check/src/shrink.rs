//! Greedy reproducer shrinking.
//!
//! Given a failing [`FuzzCase`], repeatedly try simpler variants — shorter
//! trace, fewer functions, features switched off — and keep any variant
//! that *still fails*. The result is a minimal-ish case whose replay is
//! fast and whose failure is easy to stare at. Greedy one-knob-at-a-time
//! shrinking is not globally minimal, but it converges in a few dozen
//! replays and that is what a reproducer needs.

use crate::fuzz::{run_case, Failure, FuzzCase};

/// Floor for the trace length during shrinking: short enough to replay in
/// milliseconds, long enough that caches still see real traffic.
pub const MIN_INSTS: usize = 200;

/// Outcome of a shrink campaign.
#[derive(Debug)]
pub struct Shrunk {
    /// The smallest still-failing case found.
    pub case: FuzzCase,
    /// Its failure (re-validated on the final case).
    pub failure: Failure,
    /// How many candidate replays the search spent.
    pub attempts: usize,
}

/// Shrinks `case` (which must fail) to a smaller still-failing case.
///
/// `max_attempts` bounds the total number of candidate replays, so a slow
/// pathological case cannot stall a fuzz campaign indefinitely.
///
/// # Panics
///
/// Panics if `case` does not fail when replayed.
pub fn shrink(case: &FuzzCase, max_attempts: usize) -> Shrunk {
    let mut best = case.clone();
    let mut failure = match run_case(&best) {
        Err(f) => f,
        Ok(_) => panic!("shrink() called on a passing case: {}", best.to_json()),
    };
    let mut attempts = 0usize;

    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if attempts >= max_attempts {
                return Shrunk { case: best, failure, attempts };
            }
            attempts += 1;
            if let Err(f) = run_case(&candidate) {
                best = candidate;
                failure = f;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return Shrunk { case: best, failure, attempts };
        }
    }
}

/// Simpler variants of `case`, most aggressive first. Each differs from
/// `case` in exactly one knob so the greedy loop attributes progress
/// correctly.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |c: FuzzCase| {
        if &c != case {
            out.push(c);
        }
    };

    // Trace length dominates replay time: halve it first, then trim by
    // quarters as the halving stops working.
    if case.insts / 2 >= MIN_INSTS {
        push(FuzzCase { insts: case.insts / 2, ..case.clone() });
    }
    if case.insts * 3 / 4 >= MIN_INSTS && case.insts * 3 / 4 < case.insts {
        push(FuzzCase { insts: case.insts * 3 / 4, ..case.clone() });
    }
    if case.insts > MIN_INSTS {
        push(FuzzCase { insts: MIN_INSTS, ..case.clone() });
    }

    // Fewer functions = a smaller program to stare at.
    if case.functions / 2 >= 1 {
        push(FuzzCase { functions: case.functions / 2, ..case.clone() });
    }
    if case.functions > 1 {
        push(FuzzCase { functions: 1, ..case.clone() });
    }

    // Feature knobs, simplest configuration last so the reproducer names
    // the feature only when it is actually implicated.
    if case.interrupts.is_some() {
        push(FuzzCase { interrupts: None, ..case.clone() });
    }
    if case.xbq_depth != 0 {
        push(FuzzCase { xbq_depth: 0, ..case.clone() });
    }
    if case.set_search {
        push(FuzzCase { set_search: false, ..case.clone() });
    }
    if case.promotion != 0 {
        push(FuzzCase { promotion: 0, ..case.clone() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_reaches_the_floor_on_an_injected_corruption() {
        // A corrupted stream fails at ANY size, so a correct greedy
        // shrinker must ride it all the way down to the floor.
        let case = FuzzCase { corrupt: Some(12345), ..FuzzCase::from_seed(21) };
        assert!(case.insts > MIN_INSTS);
        let shrunk = shrink(&case, 200);
        assert_eq!(shrunk.case.insts, MIN_INSTS);
        assert_eq!(shrunk.case.functions, 1);
        assert!(shrunk.case.interrupts.is_none());
        assert_eq!(shrunk.case.xbq_depth, 0);
        // The shrunk case still fails, deterministically.
        assert!(run_case(&shrunk.case).is_err());
        assert!(run_case(&shrunk.case).is_err());
    }
}
