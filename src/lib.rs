//! Workspace-level umbrella crate; see README.md.
pub use xbc as core;
