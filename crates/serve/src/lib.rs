//! # xbc-serve — long-running sweep service
//!
//! A daemon that keeps one [`xbc_store::Store`] and one worker pool warm
//! across many sweep requests, plus the matching client:
//!
//! * [`protocol`] — the `xbc-serve-v1` JSONL wire protocol (requests,
//!   row/trailer lines, and the compact serializers they use),
//! * [`serve`] / [`ServeConfig`] — the daemon: a Unix-domain-socket
//!   accept loop feeding (trace × frontend) cells onto a shared
//!   cell-level scheduler (the same cell model as `xbc_sim::Sweep`),
//! * [`submit`] / [`ping`] / [`shutdown`] — the client side, used by
//!   `xbcsim submit`.
//!
//! Replay inside the daemon is *streaming-first*: a cell whose trace is
//! already in the store replays it through the bounded-window oracle
//! (`Frontend::run_streamed`), so daemon memory stays O(window) per
//! worker however long the traces are. Cells whose trace is not yet
//! captured fall back to one shared resident capture per trace — which
//! also lands the trace in the store, so every later cell streams.
//!
//! Rows served for a warm store are **byte-identical** to a one-shot
//! `xbcsim sweep` of the same grid: cached rows are replayed verbatim
//! (original `elapsed_ms` included), and the row JSON is a fixed point
//! of parse → re-encode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
pub mod protocol;

pub use client::{ping, shutdown, submit, SubmitOutcome};
pub use daemon::{serve, ServeConfig};
