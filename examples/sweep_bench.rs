//! Measures cell-level sweep-scheduler throughput on a fig9-style grid:
//! 8 frontend configurations over 2 traces — many more configs than
//! traces, the shape a trace-major scheduler cannot parallelize beyond
//! the trace count.
//!
//! ```text
//! cargo run --release --example sweep_bench -- [THREADS] [INSTS] [BENCH_JSON]
//! ```
//!
//! Prints the run's `SweepBench` summary and, with a third argument,
//! writes the full `BENCH_sweep.json`.

use xbc_sim::{FrontendSpec, Sweep};
use xbc_workload::{standard_traces, TraceSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = args.first().map_or(0, |v| v.parse().expect("THREADS"));
    let insts: usize = args.get(1).map_or(200_000, |v| v.parse().expect("INSTS"));

    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
    let mut frontends = Vec::new();
    for &s in &[4096usize, 8192, 16384, 32768] {
        frontends.push(FrontendSpec::Tc { total_uops: s, ways: 4 });
        frontends.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    assert_eq!(frontends.len(), 8);

    let mut sweep = Sweep::new(traces, frontends, insts);
    sweep.threads = threads;
    sweep.progress = false;
    let (rows, bench) = sweep.run_with_bench();
    assert_eq!(rows.len(), 16);

    println!("{bench}");
    println!(
        "schedulable parallelism: {} cells (trace-major scheduling would cap at {} workers)",
        bench.total_cells, bench.traces
    );
    if let Some(path) = args.get(2) {
        std::fs::write(path, bench.to_json()).expect("write bench json");
        println!("wrote {path}");
    }
}
