//! Branch target buffer for the instruction-cache frontend.
//!
//! The IC-based frontend of Figure 6 uses a BTB to redirect fetch: it maps a
//! branch instruction's IP to its kind and (for direct branches) its taken
//! target, so fetch can follow predicted-taken branches without decoding.

use xbc_isa::{Addr, BranchKind};
use xbc_uarch::SetAssoc;

/// One BTB entry: what kind of branch lives at the tagged IP, and where it
/// goes when taken (direct branches only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// Control-flow class of the branch.
    pub kind: BranchKind,
    /// Static taken target for direct branches; `None` for indirect ones.
    pub target: Option<Addr>,
}

/// Configuration of a [`Btb`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    /// 4K entries, 4-way: large enough that BTB capacity is not the
    /// bottleneck, as in the paper's stand-alone frontend methodology.
    fn default() -> Self {
        BtbConfig { entries: 4096, ways: 4 }
    }
}

/// A set-associative branch target buffer keyed by branch IP.
///
/// # Examples
///
/// ```
/// use xbc_predict::{Btb, BtbConfig, BtbEntry};
/// use xbc_isa::{Addr, BranchKind};
///
/// let mut btb = Btb::new(BtbConfig { entries: 16, ways: 2 });
/// btb.update(Addr::new(0x10), BtbEntry { kind: BranchKind::CondDirect, target: Some(Addr::new(0x40)) });
/// assert_eq!(btb.lookup(Addr::new(0x10)).unwrap().target, Some(Addr::new(0x40)));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    cache: SetAssoc<BtbEntry>,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.entries > 0, "BTB geometry must be non-zero");
        assert!(cfg.entries.is_multiple_of(cfg.ways), "entries must divide into ways");
        Btb { cache: SetAssoc::new(cfg.entries / cfg.ways, cfg.ways) }
    }

    fn set_and_tag(&self, ip: Addr) -> (usize, u64) {
        let sets = self.cache.sets() as u64;
        let key = ip.raw();
        ((key % sets) as usize, key / sets)
    }

    /// Looks up the branch at `ip`, updating recency.
    pub fn lookup(&mut self, ip: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(ip);
        self.cache.get(set, tag).copied()
    }

    /// Installs or refreshes the entry for the branch at `ip`.
    pub fn update(&mut self, ip: Addr, entry: BtbEntry) {
        let (set, tag) = self.set_and_tag(ip);
        self.cache.insert(set, tag, entry);
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> xbc_uarch::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig { entries: 8, ways: 2 });
        assert!(btb.lookup(Addr::new(0x20)).is_none());
        btb.update(
            Addr::new(0x20),
            BtbEntry { kind: BranchKind::UncondDirect, target: Some(Addr::new(0x100)) },
        );
        let e = btb.lookup(Addr::new(0x20)).unwrap();
        assert_eq!(e.kind, BranchKind::UncondDirect);
    }

    #[test]
    fn indirect_entries_have_no_target() {
        let mut btb = Btb::new(BtbConfig { entries: 8, ways: 2 });
        btb.update(Addr::new(0x30), BtbEntry { kind: BranchKind::Return, target: None });
        assert_eq!(btb.lookup(Addr::new(0x30)).unwrap().target, None);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut btb = Btb::new(BtbConfig { entries: 2, ways: 2 }); // one set
        let mk = |t| BtbEntry { kind: BranchKind::CondDirect, target: Some(Addr::new(t)) };
        btb.update(Addr::new(2), mk(1));
        btb.update(Addr::new(4), mk(2));
        btb.update(Addr::new(6), mk(3)); // evicts ip=2
        assert!(btb.lookup(Addr::new(2)).is_none());
        assert!(btb.lookup(Addr::new(6)).is_some());
    }

    #[test]
    #[should_panic(expected = "divide into ways")]
    fn bad_geometry_rejected() {
        let _ = Btb::new(BtbConfig { entries: 9, ways: 2 });
    }
}
