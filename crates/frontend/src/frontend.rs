//! The common frontend interface.

use crate::metrics::FrontendMetrics;
use crate::oracle::OracleStream;
use xbc_obs::EventSink;
use xbc_workload::{InstSource, Trace};

/// The one replay loop behind every `run*` entry point: steps `fe`
/// against `oracle` (traced when `sink` is set) until the stream drains,
/// with the forward-progress watchdog. Shared so the resident and
/// streaming paths cannot drift apart.
///
/// # Panics
///
/// Panics if the frontend stops delivering uops for 10,000 consecutive
/// cycles (a livelocked pointer-repair loop must fail loudly rather
/// than spin; the longest legal stall is one misprediction penalty
/// plus an IC miss).
fn drive<F: Frontend + ?Sized>(
    fe: &mut F,
    oracle: &mut OracleStream<'_>,
    mut sink: Option<&mut dyn EventSink>,
) -> FrontendMetrics {
    let mut metrics = FrontendMetrics::default();
    let mut last_delivered = 0u64;
    let mut stuck_cycles = 0u32;
    while !oracle.done() {
        match sink.as_deref_mut() {
            Some(s) => fe.step_traced(oracle, &mut metrics, s),
            None => fe.step(oracle, &mut metrics),
        }
        if oracle.delivered_uops() == last_delivered {
            stuck_cycles += 1;
            assert!(
                stuck_cycles < 10_000,
                "{} frontend livelock at inst {} (ip {}): {}",
                fe.name(),
                oracle.inst_index(),
                oracle.fetch_ip(),
                fe.state_brief()
            );
        } else {
            last_delivered = oracle.delivered_uops();
            stuck_cycles = 0;
        }
    }
    metrics
}

/// A trace-driven frontend model: replays a committed instruction stream
/// and reports how many cycles it took and where the uops came from.
///
/// Implementations in this workspace: [`crate::IcFrontend`] (pure
/// instruction cache), [`crate::UopCacheFrontend`] (decoded cache, paper
/// §2.2), [`crate::TraceCacheFrontend`] (paper §2.3), and the XBC frontend
/// in the `xbc` crate (paper §3).
///
/// The unit of progress is [`Frontend::step`]: one machine cycle against
/// the oracle cursor. [`Frontend::run`] is a provided whole-trace loop
/// over `step` with a forward-progress watchdog; checkers (the `xbc-check`
/// crate's lockstep differential harness) drive `step` directly so they
/// can compare streams and audit state *between* cycles instead of only at
/// the end of a run.
pub trait Frontend {
    /// Short machine-readable name (used in report tables).
    fn name(&self) -> &str;

    /// Advances the model by exactly one cycle against `oracle`,
    /// accumulating into `metrics`. Every call must add at least one cycle
    /// to `metrics.cycles`.
    ///
    /// # Panics
    ///
    /// May panic if called when `oracle.done()` — callers check first.
    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics);

    /// [`Frontend::step`], with cycle-level event tracing into `sink`.
    ///
    /// Emits one `Event` per counter bump (so a `Reconciler` fold of
    /// the stream reproduces `metrics` exactly) plus observability-only
    /// detail, closing with exactly one `Event::Cycle`. The default
    /// ignores `sink` and just steps — every frontend in this workspace
    /// overrides it; the default exists so external `Frontend` impls
    /// (if any) keep compiling, degrading to an empty trace.
    ///
    /// # Panics
    ///
    /// Same contract as [`Frontend::step`].
    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        let _ = sink;
        self.step(oracle, metrics);
    }

    /// Label of the current internal mode (`"build"` / `"delivery"`), for
    /// divergence reports. Single-mode frontends report `"build"`.
    fn mode_label(&self) -> &'static str {
        "build"
    }

    /// One-line summary of internal state for watchdog / divergence
    /// diagnostics. Default: empty.
    fn state_brief(&self) -> String {
        String::new()
    }

    /// Structural self-audit: verifies the model's internal invariants
    /// (duplicate-free arrays, consistent counters, valid pointers).
    /// Returns a description of the first violation found. Frontends
    /// without auditable structure report `Ok(())`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }

    /// Replays the whole trace, returning accumulated metrics.
    ///
    /// A frontend is single-shot per run: internal predictor/cache state
    /// persists across calls, which models a warm restart; create a fresh
    /// instance for an independent run.
    ///
    /// # Panics
    ///
    /// Panics if the frontend stops delivering uops for 10,000 consecutive
    /// cycles (a livelocked pointer-repair loop must fail loudly rather
    /// than spin; the longest legal stall is one misprediction penalty
    /// plus an IC miss).
    fn run(&mut self, trace: &Trace) -> FrontendMetrics {
        drive(self, &mut OracleStream::new(trace), None)
    }

    /// [`Frontend::run`], tracing every cycle's events into `sink`.
    ///
    /// Same replay loop and watchdog as [`Frontend::run`], driving
    /// [`Frontend::step_traced`] instead of `step`.
    ///
    /// # Panics
    ///
    /// Same livelock watchdog as [`Frontend::run`].
    fn run_traced(&mut self, trace: &Trace, sink: &mut dyn EventSink) -> FrontendMetrics {
        drive(self, &mut OracleStream::new(trace), Some(sink))
    }

    /// [`Frontend::run`] over a streaming instruction source: the trace
    /// is pulled through a bounded window (default
    /// [`crate::DEFAULT_STREAM_WINDOW`] instructions), so host memory is
    /// O(window) however long the trace is. Metrics are bit-identical to
    /// a resident [`Frontend::run`] of the same committed stream.
    ///
    /// # Panics
    ///
    /// Same livelock watchdog as [`Frontend::run`]; additionally panics
    /// if the source yields corrupt data mid-stream (see
    /// `xbc_workload::TraceStream`).
    fn run_streamed(&mut self, source: &mut dyn InstSource) -> FrontendMetrics {
        drive(self, &mut OracleStream::streaming(source), None)
    }

    /// [`Frontend::run_streamed`], tracing every cycle's events into
    /// `sink`.
    ///
    /// # Panics
    ///
    /// Same contract as [`Frontend::run_streamed`].
    fn run_streamed_traced(
        &mut self,
        source: &mut dyn InstSource,
        sink: &mut dyn EventSink,
    ) -> FrontendMetrics {
        drive(self, &mut OracleStream::streaming(source), Some(sink))
    }
}
