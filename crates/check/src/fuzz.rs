//! Seeded fuzz cases: random workload + configuration points, replayed
//! through every frontend under the differential harness.
//!
//! A [`FuzzCase`] is a *complete* description of one run — the workload
//! seed, trace length, XBC configuration knobs, and an optional injected
//! corruption — so a failing case written to disk as JSON replays
//! byte-for-byte deterministically on any machine.

use crate::diff::{DiffHarness, Divergence};
use std::panic::{catch_unwind, AssertUnwindSafe};
use xbc::{PromotionMode, XbcConfig, XbcFrontend};
use xbc_frontend::{
    BbtcConfig, BbtcFrontend, Frontend, FrontendMetrics, IcFrontend, IcFrontendConfig, TcConfig,
    TimingConfig, TraceCacheFrontend, UopCacheConfig, UopCacheFrontend,
};
use xbc_sim::json::Json;
use xbc_workload::{ProgramGenerator, Rng64, Trace, WorkloadProfile};

/// Reproducer format version (bump on incompatible field changes).
const FORMAT_VERSION: u64 = 1;

/// One self-contained fuzz case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Seed for the program generator, executor, and profile derivation.
    pub seed: u64,
    /// Number of functions in the synthetic program.
    pub functions: usize,
    /// Dynamic instructions to capture and replay.
    pub insts: usize,
    /// XBC array capacity in uop slots.
    pub total_uops: usize,
    /// Branch promotion mode: 0 = off, 1 = chain, 2 = merge.
    pub promotion: u8,
    /// XBC set search on XBTB-hit/XBC-miss.
    pub set_search: bool,
    /// XBQ depth in uops (0 disables fetch-ahead).
    pub xbq_depth: usize,
    /// Renamer width in uops/cycle. Mostly realistic widths, but the
    /// pool includes pathological ones past `u16::MAX` — a regression
    /// net for the event-payload narrowing (`delivered as u16` once
    /// silently wrapped counters on such configs).
    pub renamer_width: usize,
    /// Mean instructions between asynchronous interrupts, if any.
    pub interrupts: Option<usize>,
    /// When set, mutate the committed instruction at `corrupt % insts` in
    /// the *subject* trace while the reference stays pristine — an
    /// injected divergence the harness must catch.
    pub corrupt: Option<usize>,
}

impl FuzzCase {
    /// Derives a random (but fully reproducible) case from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed ^ 0xF0CA_CC1A_0F5E_BA5E);
        let functions = 1 + rng.uniform(48) as usize;
        let insts = 400 + rng.uniform(7600) as usize;
        let total_uops = [2048usize, 4096, 8192, 32 * 1024][rng.uniform(4) as usize];
        let promotion = rng.uniform(3) as u8;
        let set_search = rng.gen::<bool>();
        let xbq_depth = [0usize, 8, 16, 32][rng.uniform(4) as usize];
        let renamer_width = [4usize, 8, 8, 8, 16, 32, 70_000, 1 << 20][rng.uniform(8) as usize];
        let interrupts =
            if rng.uniform(4) == 0 { Some(100 + rng.uniform(900) as usize) } else { None };
        FuzzCase {
            seed,
            functions,
            insts,
            total_uops,
            promotion,
            set_search,
            xbq_depth,
            renamer_width,
            interrupts,
            corrupt: None,
        }
    }

    /// Serializes the case as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| v.map_or("null".to_owned(), |n| n.to_string());
        format!(
            concat!(
                "{{\"version\":{},\"seed\":{},\"functions\":{},\"insts\":{},",
                "\"total_uops\":{},\"promotion\":{},\"set_search\":{},",
                "\"xbq_depth\":{},\"renamer_width\":{},\"interrupts\":{},\"corrupt\":{}}}"
            ),
            FORMAT_VERSION,
            self.seed,
            self.functions,
            self.insts,
            self.total_uops,
            self.promotion,
            self.set_search,
            self.xbq_depth,
            self.renamer_width,
            opt(self.interrupts),
            opt(self.corrupt),
        )
    }

    /// Parses a case previously written by [`FuzzCase::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        let version = j.get("version").and_then(Json::as_u64).ok_or("missing version")?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported reproducer version {version}"));
        }
        let req = |key: &str| j.get(key).and_then(Json::as_usize).ok_or(format!("missing {key}"));
        let opt = |key: &str| match j.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_usize().map(Some).ok_or(format!("malformed {key}")),
        };
        Ok(FuzzCase {
            seed: j.get("seed").and_then(Json::as_u64).ok_or("missing seed")?,
            functions: req("functions")?,
            insts: req("insts")?,
            total_uops: req("total_uops")?,
            promotion: req("promotion")? as u8,
            set_search: j.get("set_search").and_then(Json::as_bool).ok_or("missing set_search")?,
            xbq_depth: req("xbq_depth")?,
            // Absent in pre-knob reproducers: default to the paper width.
            renamer_width: opt("renamer_width")?.unwrap_or(8),
            interrupts: opt("interrupts")?,
            corrupt: opt("corrupt")?,
        })
    }

    /// The workload profile this case synthesizes. Knobs other than the
    /// function count are themselves seed-derived so cases cover biased /
    /// loopy / indirect-heavy corners of the generator space.
    pub fn profile(&self) -> WorkloadProfile {
        let mut rng = Rng64::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        WorkloadProfile {
            functions: self.functions,
            biased_taken_frac: 0.05 + 0.35 * rng.gen::<f64>(),
            biased_not_taken_frac: 0.05 + 0.2 * rng.gen::<f64>(),
            loop_frac: 0.05 + 0.3 * rng.gen::<f64>(),
            join_bias: 0.5 * rng.gen::<f64>(),
            hot_call_prob: 0.5 + 0.5 * rng.gen::<f64>(),
            indirect_targets_max: 1 + rng.uniform(8) as usize,
            interrupt_interval: self.interrupts,
            ..WorkloadProfile::default()
        }
    }

    /// Captures the (reference, subject) trace pair. They are the same
    /// stream unless [`FuzzCase::corrupt`] is set, in which case one
    /// committed instruction of the subject has its uop count rewritten.
    pub fn traces(&self) -> (Trace, Trace) {
        let profile = self.profile();
        profile.validate();
        let program = ProgramGenerator::new(profile, self.seed).generate();
        let name = format!("fuzz-{:#x}", self.seed);
        let reference =
            Trace::capture_with_options(&name, &program, self.seed, self.insts, 0.85, None);
        let subject = match self.corrupt {
            None => reference.clone(),
            Some(at) => {
                let mut insts = reference.insts().to_vec();
                let i = at % insts.len();
                // Rotate the uop count through 1..=4: always a well-formed
                // instruction, never equal to the original.
                insts[i].inst.uops = (insts[i].inst.uops % 4) + 1;
                Trace::from_parts(&name, insts)
            }
        };
        (reference, subject)
    }

    /// The timing constants every frontend of this case runs with.
    fn timing(&self) -> TimingConfig {
        TimingConfig { renamer_width: self.renamer_width, ..TimingConfig::default() }
    }

    /// The XBC configuration under test.
    pub fn xbc_config(&self) -> XbcConfig {
        XbcConfig {
            total_uops: self.total_uops,
            timing: self.timing(),
            promotion: match self.promotion {
                0 => PromotionMode::Off,
                1 => PromotionMode::Chain,
                _ => PromotionMode::Merge,
            },
            set_search: self.set_search,
            xbq_depth: self.xbq_depth,
            ..XbcConfig::default()
        }
    }

    /// All frontends this case exercises, cold.
    pub fn frontends(&self) -> Vec<Box<dyn Frontend + Send>> {
        vec![
            Box::new(IcFrontend::new(IcFrontendConfig {
                timing: self.timing(),
                ..Default::default()
            })),
            Box::new(UopCacheFrontend::new(UopCacheConfig {
                total_uops: self.total_uops,
                timing: self.timing(),
                ..Default::default()
            })),
            Box::new(TraceCacheFrontend::new(TcConfig {
                total_uops: self.total_uops,
                timing: self.timing(),
                ..Default::default()
            })),
            Box::new(BbtcFrontend::new(BbtcConfig {
                total_uops: self.total_uops,
                timing: self.timing(),
                ..Default::default()
            })),
            Box::new(XbcFrontend::new(self.xbc_config())),
        ]
    }
}

/// How a fuzz case failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// The harness caught a divergence.
    Divergence(Divergence),
    /// A frontend panicked; the payload names the frontend and message.
    Panic {
        /// Which frontend panicked.
        frontend: String,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Divergence(d) => write!(f, "{d}"),
            Failure::Panic { frontend, message } => {
                write!(f, "panic in `{frontend}`: {message}")
            }
        }
    }
}

/// Runs one case through every frontend under the differential harness.
///
/// A frontend panic is caught and reported as [`Failure::Panic`] rather
/// than aborting the campaign — for a fuzzer, a panic *is* a finding.
///
/// # Errors
///
/// Returns the first [`Failure`] across the frontends.
pub fn run_case(case: &FuzzCase) -> Result<Vec<(String, FrontendMetrics)>, Failure> {
    let (reference, subject) = case.traces();
    let harness = DiffHarness::new();
    let mut results = Vec::new();
    for mut fe in case.frontends() {
        let name = fe.name().to_owned();
        let run = catch_unwind(AssertUnwindSafe(|| harness.run(&mut *fe, &subject, &reference)));
        match run {
            Ok(Ok(metrics)) => results.push((name, metrics)),
            Ok(Err(div)) => return Err(Failure::Divergence(div)),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>")
                    .to_owned();
                return Err(Failure::Panic { frontend: name, message });
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut case = FuzzCase::from_seed(seed);
            case.corrupt = if seed % 2 == 0 { Some(17) } else { None };
            let back = FuzzCase::from_json(&case.to_json()).unwrap();
            assert_eq!(back, case);
        }
        assert!(FuzzCase::from_json("{\"version\":99}").is_err());
        assert!(FuzzCase::from_json("{}").is_err());
        assert!(FuzzCase::from_json("not json").is_err());
    }

    #[test]
    fn corruption_changes_exactly_one_inst() {
        let case = FuzzCase { insts: 500, corrupt: Some(1234), ..FuzzCase::from_seed(7) };
        let (reference, subject) = case.traces();
        let diffs = reference.insts().iter().zip(subject.insts()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        assert_ne!(reference.uop_count(), subject.uop_count());
    }

    #[test]
    fn clean_case_passes_all_frontends() {
        let case = FuzzCase { insts: 1500, functions: 6, ..FuzzCase::from_seed(3) };
        let results = run_case(&case).unwrap_or_else(|f| panic!("unexpected failure: {f}"));
        assert_eq!(results.len(), 5);
        let (ref_trace, _) = case.traces();
        for (name, m) in &results {
            assert_eq!(m.total_uops(), ref_trace.uop_count(), "uop count for {name}");
        }
    }

    #[test]
    fn pathological_renamer_width_does_not_wrap_counters() {
        // Widths past u16::MAX once wrapped the `Event::Uops` payload
        // (`delivered as u16`), silently corrupting delivered-uop
        // counters. With the saturating narrowing every frontend must
        // still account for each uop exactly once.
        let case =
            FuzzCase { insts: 1200, functions: 5, renamer_width: 70_000, ..FuzzCase::from_seed(5) };
        assert!(case.renamer_width > u16::MAX as usize);
        let results = run_case(&case).unwrap_or_else(|f| panic!("unexpected failure: {f}"));
        let (ref_trace, _) = case.traces();
        for (name, m) in &results {
            assert_eq!(m.total_uops(), ref_trace.uop_count(), "uop count for {name}");
        }
    }

    #[test]
    fn corrupted_case_fails() {
        let case =
            FuzzCase { insts: 1000, functions: 4, corrupt: Some(500), ..FuzzCase::from_seed(11) };
        let failure = run_case(&case).expect_err("corruption must be detected");
        let text = failure.to_string();
        assert!(text.contains("divergence") || text.contains("panic"), "got: {text}");
    }
}
