//! Regression tests for the cell-level sweep scheduler: a grid with
//! more frontends than traces must (a) produce rows identical to the
//! single-threaded run — the scheduler only changes *when* cells run,
//! never *what* they compute — and (b) account every measured
//! millisecond of capture + simulation to some row (no remainder
//! dropped by the capture-cost split).

use xbc_sim::{FrontendSpec, Sweep};
use xbc_workload::{standard_traces, TraceSpec};

/// A fig9-style grid: many configurations, few traces — the shape a
/// trace-major scheduler serializes.
fn eight_frontends() -> Vec<FrontendSpec> {
    let mut fes = Vec::new();
    for &s in &[2048usize, 4096, 8192, 16384] {
        fes.push(FrontendSpec::Tc { total_uops: s, ways: 4 });
        fes.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    fes
}

/// Everything but `elapsed_ms` (which is wall-clock measurement, not
/// simulation output) must match across thread counts.
fn assert_rows_identical(a: &[xbc_sim::Row], b: &[xbc_sim::Row]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.trace, y.trace);
        assert_eq!(x.frontend, y.frontend);
        assert_eq!(x.insts, y.insts);
        assert_eq!(x.uops, y.uops);
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.miss_rate, y.miss_rate);
        assert_eq!(x.bandwidth, y.bandwidth);
        assert_eq!(x.uops_per_cycle, y.uops_per_cycle);
        assert_eq!(x.cond_mispredicts, y.cond_mispredicts);
        assert_eq!(x.target_mispredicts, y.target_mispredicts);
        assert_eq!(x.delivery_to_build, y.delivery_to_build);
        assert_eq!(x.bank_conflict_uops, y.bank_conflict_uops);
        assert_eq!(x.promotions, y.promotions);
    }
}

#[test]
fn one_trace_eight_configs_parallel_matches_single_thread() {
    // 1 trace × 8 configs: the old trace-major scheduler would cap this
    // sweep at one worker; the cell scheduler spreads it over four. The
    // rows must not care.
    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(1).collect();
    let mut sweep = Sweep::new(traces, eight_frontends(), 4_000);
    sweep.progress = false;
    sweep.threads = 4;
    let (par, bench) = sweep.run_with_bench();
    assert_eq!(bench.threads, 4);
    assert_eq!(bench.total_cells, 8);
    assert_eq!(bench.simulated_cells, 8);
    assert_eq!(bench.captures, 1, "one trace is captured exactly once, not per worker");
    assert_eq!(bench.workers.len(), 4, "all four workers participate despite one trace");
    sweep.threads = 1;
    let seq = sweep.run();
    assert_rows_identical(&par, &seq);
}

#[test]
fn more_frontends_than_traces_keeps_row_order() {
    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
    let fes = eight_frontends();
    let mut sweep = Sweep::new(traces.clone(), fes.clone(), 3_000);
    sweep.progress = false;
    sweep.threads = 4;
    let rows = sweep.run();
    assert_eq!(rows.len(), 16);
    // Trace-major, frontend-minor, regardless of completion order.
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.trace, traces[i / fes.len()].name);
        assert_eq!(row.frontend, fes[i % fes.len()]);
    }
}

#[test]
fn elapsed_ms_sums_to_measured_capture_plus_sim_time() {
    // The capture-cost split distributes its remainder instead of
    // truncating it, so the per-row elapsed times reconstruct the
    // measured wall time exactly — not "up to missing-1 ms short".
    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
    let mut sweep = Sweep::new(traces, eight_frontends(), 20_000);
    sweep.progress = false;
    sweep.threads = 4;
    let (rows, bench) = sweep.run_with_bench();
    let row_total: u64 = rows.iter().map(|r| r.elapsed_ms).sum();
    assert_eq!(
        row_total,
        bench.capture_ms + bench.sim_ms,
        "per-row elapsed_ms must account for every measured capture+sim millisecond"
    );
    // And the bench's own ledger is internally consistent.
    assert_eq!(bench.total_cells, bench.cached_cells + bench.simulated_cells);
    assert_eq!(bench.workers.iter().map(|w| w.cells).sum::<usize>(), bench.simulated_cells);
}
