//! Seeded fuzz driver for the XBC correctness harness.
//!
//! Runs randomly generated workload/configuration cases through every
//! frontend under the lockstep differential oracle. On failure, greedily
//! shrinks the case and writes a JSON reproducer that
//! `crates/check/tests/repro_replay.rs` replays on every `cargo test`.
//!
//! ```text
//! xbc-check [--seeds N | --seeds A..B] [--budget SECS[s]] [--out DIR] [--inject]
//!   --seeds N      fuzz seeds 0..N (default 32)
//!   --seeds A..B   fuzz the half-open seed range A..B
//!   --budget 60s   stop after ~60 seconds even if seeds remain
//!   --out DIR      where reproducers are written (default: repros)
//!   --inject       corrupt every subject stream — harness self-test;
//!                  every case must FAIL, and failures are not written out
//! ```
//!
//! Exit status: 0 if the campaign found no real failure, 1 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use xbc_check::{run_case, shrink, FuzzCase};

struct Args {
    seeds: std::ops::Range<u64>,
    budget: Option<Duration>,
    out: PathBuf,
    inject: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seeds: 0..32, budget: None, out: PathBuf::from("repros"), inject: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = if let Some((a, b)) = v.split_once("..") {
                    let a = a.parse::<u64>().map_err(|e| format!("bad seed range start: {e}"))?;
                    let b = b.parse::<u64>().map_err(|e| format!("bad seed range end: {e}"))?;
                    a..b
                } else {
                    let n = v.parse::<u64>().map_err(|e| format!("bad seed count: {e}"))?;
                    0..n
                };
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                let secs = v
                    .strip_suffix('s')
                    .unwrap_or(&v)
                    .parse::<u64>()
                    .map_err(|e| format!("bad budget: {e}"))?;
                args.budget = Some(Duration::from_secs(secs));
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--inject" => args.inject = true,
            "--help" | "-h" => {
                eprintln!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "xbc-check: differential fuzzer for the XBC frontends
usage: xbc-check [--seeds N | --seeds A..B] [--budget SECS[s]] [--out DIR] [--inject]";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xbc-check: {e}");
            return ExitCode::from(2);
        }
    };

    let start = Instant::now();
    let mut ran = 0u64;
    let mut failures = 0u64;
    for seed in args.seeds.clone() {
        if let Some(budget) = args.budget {
            if start.elapsed() >= budget {
                println!(
                    "budget exhausted after {ran} cases ({:.1}s)",
                    start.elapsed().as_secs_f64()
                );
                break;
            }
        }
        let mut case = FuzzCase::from_seed(seed);
        if args.inject {
            // Self-test mode: corrupt one committed instruction so the
            // harness MUST report a stream divergence.
            case.corrupt = Some(seed as usize * 7919 + 13);
        }
        ran += 1;
        match run_case(&case) {
            Ok(results) => {
                if args.inject {
                    eprintln!("seed {seed}: injected corruption was NOT detected — harness bug");
                    failures += 1;
                } else {
                    let uops: u64 = results.first().map(|(_, m)| m.total_uops()).unwrap_or(0);
                    println!("seed {seed}: ok ({} frontends, {} uops)", results.len(), uops);
                }
            }
            Err(_) => {
                println!("seed {seed}: FAILURE — shrinking…");
                let shrunk = shrink(&case, 200);
                println!(
                    "seed {seed}: shrunk to {} insts / {} fn in {} attempts",
                    shrunk.case.insts, shrunk.case.functions, shrunk.attempts
                );
                println!("{}", shrunk.failure);
                if args.inject {
                    // Expected to fail: detection is the passing outcome.
                    println!("seed {seed}: injected divergence detected and shrunk (self-test ok)");
                } else {
                    failures += 1;
                    if let Err(e) = std::fs::create_dir_all(&args.out) {
                        eprintln!("xbc-check: cannot create {}: {e}", args.out.display());
                        return ExitCode::from(2);
                    }
                    let path = args.out.join(format!("repro-{seed}.json"));
                    if let Err(e) = std::fs::write(&path, shrunk.case.to_json() + "\n") {
                        eprintln!("xbc-check: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    println!("seed {seed}: reproducer written to {}", path.display());
                }
            }
        }
    }

    println!(
        "campaign done: {ran} cases, {failures} failure(s), {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
