//! The [`Probe`]: the single funnel between frontends and their
//! counters, and the [`Reconciler`] that proves it.
//!
//! A frontend never writes a `FrontendMetrics` field directly on the
//! step path. It calls [`Probe::emit`], which routes the event through
//! [`FrontendMetrics::apply_event`] *and* (when tracing) into the
//! sink. The [`Reconciler`] folds a captured event stream through the
//! same `apply_event` — so `Reconciler::fold(events) == metrics` holds
//! bit-for-bit by construction: both sides execute identical
//! arithmetic on the identical event sequence.
//!
//! The untraced path ([`Probe::untraced`]) instantiates the sink type
//! parameter with [`NullSink`] and `active = false`; after inlining
//! the emit collapses to the bare counter bump, so tracing costs
//! nothing when disabled (the `cargo bench` guard in `crates/bench`
//! watches this).

use crate::metrics::FrontendMetrics;
use xbc_obs::{Event, EventSink, NullSink};

/// Routes counter bumps and trace events through one call site.
///
/// `S` is the sink type; the hot untraced path uses `S = NullSink`
/// (monomorphized away), while `Frontend::step_traced` passes
/// `S = &mut dyn EventSink`.
pub struct Probe<'a, S: EventSink = NullSink> {
    m: &'a mut FrontendMetrics,
    sink: S,
    active: bool,
}

impl<'a> Probe<'a, NullSink> {
    /// A metrics-only probe: events update counters, nothing is traced.
    #[inline(always)]
    pub fn untraced(m: &'a mut FrontendMetrics) -> Self {
        Probe { m, sink: NullSink, active: false }
    }
}

impl<'a, S: EventSink> Probe<'a, S> {
    /// A tracing probe: events update counters *and* reach `sink`.
    #[inline]
    pub fn traced(m: &'a mut FrontendMetrics, sink: S) -> Self {
        Probe { m, sink, active: true }
    }

    /// Emits one event: applies it to the metrics, then forwards it to
    /// the sink when tracing.
    #[inline(always)]
    pub fn emit(&mut self, e: Event) {
        self.m.apply_event(&e);
        if self.active {
            self.sink.emit(e);
        }
    }

    /// Emits `n` consecutive cycle events of the same kind. Equivalent to
    /// calling [`Probe::emit`] `n` times with `Event::Cycle(kind)` — a
    /// recording sink receives the identical per-cycle stream — but the
    /// metric side folds into one pair of counter additions, and a
    /// [`NullSink`] (even `dyn`) skips the loop entirely, so bulk stall
    /// retirement costs O(1) whenever nothing records it.
    #[inline(always)]
    pub fn emit_cycles(&mut self, kind: xbc_obs::CycleKind, n: u64) {
        self.m.apply_cycles(kind, n);
        if self.active {
            self.sink.emit_cycles(kind, n);
        }
    }

    /// Emits an observability-only event (no metric effect). The
    /// closure runs only when tracing into a sink that wants detail,
    /// so neither the untraced path nor a (possibly `dyn`) [`NullSink`]
    /// pays anything for constructing it — some detail events are
    /// expensive to build (occupancy snapshots walk the array).
    #[inline(always)]
    pub fn note(&mut self, f: impl FnOnce() -> Event) {
        if self.active && self.sink.wants_detail() {
            let e = f();
            debug_assert!(!e.is_metric(), "metric-bearing event routed through note(): {e:?}");
            self.sink.emit(e);
        }
    }

    /// Read access to the counters (frontends branch on totals, e.g.
    /// the run-loop watchdog and delivery budgets).
    #[inline(always)]
    pub fn metrics(&self) -> &FrontendMetrics {
        self.m
    }
}

/// Folds an event stream back into aggregate metrics.
///
/// ```
/// use xbc_frontend::{FrontendMetrics, Reconciler};
/// use xbc_obs::{CycleKind, Event, UopSource};
///
/// let events = [
///     Event::Uops { src: UopSource::Ic, n: 3 },
///     Event::Cycle(CycleKind::Build),
/// ];
/// let m = Reconciler::fold(events.iter());
/// assert_eq!(m.cycles, 1);
/// assert_eq!(m.ic_uops, 3);
/// assert_eq!(m, {
///     let mut expect = FrontendMetrics::default();
///     expect.ic_uops = 3;
///     expect.cycles = 1;
///     expect.build_cycles = 1;
///     expect
/// });
/// ```
pub struct Reconciler;

impl Reconciler {
    /// Replays `events` through [`FrontendMetrics::apply_event`].
    pub fn fold<'e, I: IntoIterator<Item = &'e Event>>(events: I) -> FrontendMetrics {
        let mut m = FrontendMetrics::default();
        for e in events {
            m.apply_event(e);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_obs::{CycleKind, D2bCause, UopSource, VecSink};

    #[test]
    fn untraced_probe_only_bumps_counters() {
        let mut m = FrontendMetrics::default();
        let mut p = Probe::untraced(&mut m);
        p.emit(Event::Cycle(CycleKind::Stall));
        p.note(|| unreachable!("note closure must not run untraced"));
        assert_eq!(m.stall_cycles, 1);
    }

    #[test]
    fn traced_probe_captures_and_reconciles() {
        let mut m = FrontendMetrics::default();
        let mut sink = VecSink::new();
        {
            let mut p = Probe::traced(&mut m, &mut sink);
            p.emit(Event::Uops { src: UopSource::Structure, n: 4 });
            p.emit(Event::SwitchToBuild(D2bCause::ArrayMiss));
            p.emit(Event::Cycle(CycleKind::Delivery));
            p.note(|| Event::Occupancy { lines: 1, uops: 4 });
        }
        assert_eq!(sink.events.len(), 4);
        assert_eq!(Reconciler::fold(sink.events.iter()), m);
    }

    #[test]
    fn dyn_sink_probe_works() {
        let mut m = FrontendMetrics::default();
        let mut sink = VecSink::new();
        let dyn_sink: &mut dyn EventSink = &mut sink;
        {
            let mut p = Probe::traced(&mut m, dyn_sink);
            p.emit(Event::Promotion);
        }
        assert_eq!(m.promotions, 1);
        assert_eq!(sink.events, vec![Event::Promotion]);
    }
}
