//! Criterion performance benches of the simulator itself: how fast each
//! frontend model replays a trace, and the hot component operations.
//!
//! These measure *simulator* throughput (host-seconds per simulated uop),
//! not the simulated machine — the paper's metrics come from the `fig*`
//! binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use xbc::{BankMask, PromotionMode, XbcArray, XbcConfig, XbcFrontend, XbPtr};
use xbc_bench::bench_trace;
use xbc_frontend::{
    Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend,
};
use xbc_isa::{decode, Addr, Inst};
use xbc_predict::{Gshare, GshareConfig};

const TRACE_INSTS: usize = 50_000;

fn frontends(c: &mut Criterion) {
    let trace = bench_trace(TRACE_INSTS);
    let mut g = c.benchmark_group("frontend_replay");
    g.throughput(Throughput::Elements(trace.uop_count()));

    g.bench_function("ic", |b| {
        b.iter_batched(
            || IcFrontend::new(IcFrontendConfig::default()),
            |mut fe| fe.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("tc_32k", |b| {
        b.iter_batched(
            || TraceCacheFrontend::new(TcConfig::default()),
            |mut fe| fe.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("xbc_32k", |b| {
        b.iter_batched(
            || XbcFrontend::new(XbcConfig::default()),
            |mut fe| fe.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("xbc_32k_nopromo", |b| {
        b.iter_batched(
            || XbcFrontend::new(XbcConfig { promotion: PromotionMode::Off, ..XbcConfig::default() }),
            |mut fe| fe.run(&trace),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    // Array insert + fetch round trip.
    let cfg = XbcConfig { total_uops: 8192, ..XbcConfig::default() };
    let uops: Vec<_> = decode(&Inst::plain(Addr::new(0x100), 4, 4))
        .into_iter()
        .chain(decode(&Inst::plain(Addr::new(0x104), 4, 4)))
        .chain(decode(&Inst::plain(Addr::new(0x108), 4, 4)))
        .collect();
    g.bench_function("array_insert_fetch", |b| {
        b.iter_batched(
            || XbcArray::new(&cfg),
            |mut a| {
                for i in 0..64u64 {
                    let ip = Addr::new(0x100 + i * 37);
                    let mask = a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
                    let ptr = XbPtr::new(ip, Addr::new(0x100), mask, uops.len() as u8);
                    let mut used = BankMask::EMPTY;
                    let _ = a.fetch_one(&ptr, &mut used);
                }
                a
            },
            BatchSize::SmallInput,
        )
    });

    // Predictor update throughput.
    g.bench_function("gshare_update", |b| {
        let mut gs = Gshare::new(GshareConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            gs.update(Addr::new(0x4000 + (i % 256)), i.is_multiple_of(3))
        })
    });

    // Workload generation (program synthesis).
    g.bench_function("trace_capture_10k", |b| {
        b.iter(|| bench_trace(10_000).uop_count());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = frontends, components
}
criterion_main!(benches);
