//! Fixed-capacity inline vector for allocation-free hot paths.
//!
//! The steady-state delivery path must not touch the heap (DESIGN.md §12),
//! and the build is hermetic (no external `smallvec`), so this is a minimal
//! in-tree stand-in: a `[T; N]` plus a length. It is deliberately restricted
//! to `T: Copy + Default` so it needs no `unsafe` (the crate forbids it) —
//! unused slots simply hold `T::default()`.

use std::ops::{Deref, DerefMut};

/// A vector with inline storage for at most `N` elements.
///
/// Dereferences to `&[T]`, so slice methods (`iter`, `len`, indexing,
/// `to_vec`, ...) work directly. Pushing beyond `N` panics: capacities are
/// chosen from hardware bounds (e.g. at most [`crate::MAX_BANKS`] lines per
/// assembled XB), so overflow is a logic error, not a resource condition.
///
/// # Examples
///
/// ```
/// use xbc::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// v.push(7);
/// v.push(9);
/// assert_eq!(&v[..], &[7, 9]);
/// assert_eq!(v.iter().sum::<u32>(), 16);
/// ```
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: usize,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        InlineVec { buf: [T::default(); N], len: 0 }
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements.
    pub fn push(&mut self, value: T) {
        assert!(self.len < N, "InlineVec capacity {N} exceeded");
        self.buf[self.len] = value;
        self.len += 1;
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.buf[self.len])
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Shortens the vector to at most `len` elements.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf[..self.len]
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[..self.len]
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self[..] == *other
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut v: InlineVec<u8, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(&v[..], &[1, 2]);
        v.clear();
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn truncate_and_slice_compare() {
        let mut v: InlineVec<u32, 4> = (0..4).collect();
        v.truncate(2);
        assert_eq!(v, [0, 1]);
        v.truncate(10); // no-op past len
        assert_eq!(v.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 1> = InlineVec::new();
        v.push(0);
        v.push(1);
    }

    #[test]
    fn equality_ignores_dead_slots() {
        let mut a: InlineVec<u8, 4> = InlineVec::new();
        a.push(9);
        a.push(8);
        a.pop(); // dead slot still holds 8
        let mut b: InlineVec<u8, 4> = InlineVec::new();
        b.push(9);
        assert_eq!(a, b);
    }
}
