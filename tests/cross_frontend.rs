//! Cross-crate integration tests: every frontend model replays the same
//! committed stream faithfully, deterministically, and with sane cycle
//! accounting.

use xbc::{XbcConfig, XbcFrontend};
use xbc_check::DiffHarness;
use xbc_frontend::{
    BbtcConfig, BbtcFrontend, Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend,
    UopCacheConfig, UopCacheFrontend,
};
use xbc_workload::standard_traces;

fn all_frontends(total_uops: usize) -> Vec<Box<dyn Frontend>> {
    vec![
        Box::new(IcFrontend::new(IcFrontendConfig::default())),
        Box::new(UopCacheFrontend::new(UopCacheConfig { total_uops, ..Default::default() })),
        Box::new(TraceCacheFrontend::new(TcConfig { total_uops, ..Default::default() })),
        Box::new(BbtcFrontend::new(BbtcConfig { total_uops, ..Default::default() })),
        Box::new(XbcFrontend::new(XbcConfig { total_uops, ..Default::default() })),
    ]
}

#[test]
fn every_frontend_survives_the_differential_oracle_on_every_suite() {
    // Lockstep replay of EVERY standard trace through every frontend: the
    // harness checks stream equality, uop conservation, and the cycle
    // partition after every single cycle, and runs the structural audits
    // along the way — far stronger than the old end-of-run uop-count
    // comparison, so a short per-trace budget suffices.
    let harness = DiffHarness::new();
    for spec in standard_traces() {
        let trace = spec.capture(6_000);
        for fe in &mut all_frontends(8192) {
            let m = harness
                .run(&mut **fe, &trace, &trace)
                .unwrap_or_else(|d| panic!("{} diverged on {}:\n{d}", fe.name(), spec.name));
            assert_eq!(
                m.total_uops(),
                trace.uop_count(),
                "{} lost or duplicated uops on {}",
                fe.name(),
                spec.name
            );
        }
    }
}

#[test]
fn cycle_accounting_is_closed() {
    let trace = standard_traces()[8].capture(20_000);
    for fe in &mut all_frontends(8192) {
        let m = fe.run(&trace);
        assert_eq!(
            m.cycles,
            m.build_cycles + m.delivery_cycles + m.stall_cycles,
            "{}: cycles must partition into build/delivery/stall",
            fe.name()
        );
        assert!(m.cycles > 0);
    }
}

#[test]
fn frontends_are_deterministic() {
    let trace = standard_traces()[16].capture(15_000);
    for make in [0usize, 1, 2, 3] {
        let run = |i: usize| {
            let mut fes = all_frontends(4096);
            fes[i].run(&trace)
        };
        let a = run(make);
        let b = run(make);
        assert_eq!(a, b, "frontend {make} differs between identical runs");
    }
}

#[test]
fn structures_beat_the_plain_ic() {
    let trace = standard_traces()[0].capture(60_000);
    let mut ic = IcFrontend::new(IcFrontendConfig::default());
    let base = ic.run(&trace).overall_uops_per_cycle();
    for fe in &mut all_frontends(32 * 1024)[1..] {
        let upc = fe.run(&trace).overall_uops_per_cycle();
        assert!(
            upc > base,
            "{} ({upc:.2} uops/cyc) should outperform the raw IC ({base:.2})",
            fe.name()
        );
    }
}

#[test]
fn warm_restart_reuses_state() {
    // Frontend instances keep their caches across runs: the second replay
    // of the same trace must miss less.
    let trace = standard_traces()[0].capture(30_000);
    let mut fe = XbcFrontend::new(XbcConfig { total_uops: 32 * 1024, ..Default::default() });
    let cold = fe.run(&trace);
    let warm = fe.run(&trace);
    assert!(
        warm.uop_miss_rate() < cold.uop_miss_rate(),
        "warm {} vs cold {}",
        warm.uop_miss_rate(),
        cold.uop_miss_rate()
    );
}

#[test]
fn cached_sweep_rows_are_byte_identical_to_fresh() {
    use std::sync::Arc;
    use xbc_sim::{to_json, FrontendSpec, Sweep};
    use xbc_store::Store;

    let dir = std::env::temp_dir().join(format!("xbc-cross-frontend-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let traces: Vec<_> = standard_traces().into_iter().step_by(9).collect();
    let frontends = vec![FrontendSpec::tc_default(), FrontendSpec::xbc_default()];

    // Fresh: no store at all.
    let mut fresh_sweep = Sweep::new(traces.clone(), frontends.clone(), 8_000);
    fresh_sweep.progress = false;
    let fresh = fresh_sweep.run();

    // Cached: populate the store, then replay purely from it.
    let store = Arc::new(Store::open(&dir).unwrap());
    let mut cached_sweep = Sweep::new(traces, frontends, 8_000).with_store(Arc::clone(&store));
    cached_sweep.progress = false;
    cached_sweep.run();
    let replayed = cached_sweep.run();
    assert_eq!(store.stats().result_hits, replayed.len() as u64, "replay must be all hits");

    // Timing aside (wall clock is the one legitimately nondeterministic
    // field), the replayed rows serialize byte-for-byte like fresh ones.
    let strip = |rows: &[xbc_sim::Row]| {
        let mut rows = rows.to_vec();
        for r in &mut rows {
            r.elapsed_ms = 0;
        }
        to_json(&rows)
    };
    assert_eq!(strip(&fresh), strip(&replayed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_replay_is_bit_identical_to_resident() {
    // The tentpole guarantee of the streaming oracle: replaying the XBT1
    // encoding through the bounded window produces the SAME metrics and
    // the SAME cycle-level event stream as the resident replay, for every
    // frontend on every standard trace. Bit-identical, not approximately
    // equal — the streaming path changes where instructions live, never
    // what the frontend observes.
    use xbc_obs::VecSink;
    use xbc_workload::TraceStream;

    for spec in standard_traces() {
        let trace = spec.capture(4_000);
        let mut encoded = Vec::new();
        trace.save(&mut encoded).unwrap();
        for (res_fe, str_fe) in all_frontends(8192).iter_mut().zip(&mut all_frontends(8192)) {
            let mut res_sink = VecSink::new();
            let m_res = res_fe.run_traced(&trace, &mut res_sink);
            let mut stream = TraceStream::new(encoded.as_slice()).unwrap();
            let mut str_sink = VecSink::new();
            let m_str = str_fe.run_streamed_traced(&mut stream, &mut str_sink);
            assert_eq!(
                m_res,
                m_str,
                "{} on {}: streamed metrics differ from resident",
                res_fe.name(),
                spec.name
            );
            assert_eq!(
                res_sink.events.len(),
                str_sink.events.len(),
                "{} on {}: event counts differ",
                res_fe.name(),
                spec.name
            );
            if let Some(i) =
                (0..res_sink.events.len()).find(|&i| res_sink.events[i] != str_sink.events[i])
            {
                panic!(
                    "{} on {}: event {} differs: resident {:?} vs streamed {:?}",
                    res_fe.name(),
                    spec.name,
                    i,
                    res_sink.events[i],
                    str_sink.events[i]
                );
            }
        }
    }
}

#[test]
fn checked_streamed_replay_matches_too() {
    // The verified replay loop (`run_checked_streamed`) over the same
    // streaming source: identical metrics, with every per-cycle
    // accounting identity asserted along the way.
    use xbc_obs::NullSink;
    use xbc_workload::TraceStream;

    let spec = &standard_traces()[0];
    let trace = spec.capture(6_000);
    let mut encoded = Vec::new();
    trace.save(&mut encoded).unwrap();
    for (res_fe, str_fe) in all_frontends(8192).iter_mut().zip(&mut all_frontends(8192)) {
        let resident = res_fe.run(&trace);
        let mut stream = TraceStream::new(encoded.as_slice()).unwrap();
        let checked =
            xbc_sim::run_checked_streamed(&mut **str_fe, &mut stream, spec.name, &mut NullSink);
        assert_eq!(resident, checked, "{} checked-streamed differs", res_fe.name());
    }
}

#[test]
fn xbc_redundancy_stays_negligible_across_suites() {
    for spec in standard_traces().iter().step_by(5) {
        let trace = spec.capture(40_000);
        let mut fe = XbcFrontend::new(XbcConfig::default());
        fe.run(&trace);
        let (stored, distinct) = fe.array().redundancy();
        let dup = (stored - distinct) as f64 / stored.max(1) as f64;
        assert!(dup < 0.05, "{}: {:.1}% duplicated uops", spec.name, 100.0 * dup);
    }
}
