//! XB identity and pointers.
//!
//! The XBTB locates extended blocks with pointers carrying the paper's
//! three fields (§3.5): `XB_IP` (the ending instruction's address, which
//! defines set and tag), `BANK_MASK` (the banks holding the XB), and
//! `OFFSET` (uops counted backward from the end — the entry point).

use std::fmt;
use xbc_isa::Addr;

/// A set of banks, one bit per bank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BankMask(u8);

impl BankMask {
    /// The empty mask.
    pub const EMPTY: BankMask = BankMask(0);

    /// Creates a mask from raw bits.
    pub const fn from_bits(bits: u8) -> Self {
        BankMask(bits)
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Mask containing only `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= 8`.
    pub fn single(bank: usize) -> Self {
        assert!(bank < 8, "bank index out of range");
        BankMask(1 << bank)
    }

    /// True if `bank` is in the mask.
    #[inline]
    pub const fn contains(self, bank: usize) -> bool {
        self.0 & (1 << bank) != 0
    }

    /// Adds `bank`.
    #[inline]
    pub fn insert(&mut self, bank: usize) {
        self.0 |= 1 << bank;
    }

    /// Number of banks in the mask.
    #[inline]
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no banks are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the two masks share a bank.
    #[inline]
    pub const fn intersects(self, other: BankMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True if every bank of `self` is also in `other`.
    #[inline]
    pub const fn is_subset_of(self, other: BankMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Union of two masks.
    #[inline]
    pub const fn union(self, other: BankMask) -> BankMask {
        BankMask(self.0 | other.0)
    }

    /// Iterates the bank indices in the mask, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..8).filter(move |&b| self.contains(b))
    }
}

impl fmt::Debug for BankMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BankMask({:04b})", self.0)
    }
}

impl fmt::Display for BankMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

/// A pointer to (an entry point of) an extended block in the XBC.
///
/// `entry_ip` is simulation metadata: the architectural address of the
/// entry instruction, used to validate predictions against the committed
/// path. Hardware carries only the three paper fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct XbPtr {
    /// XB identity: IP of its ending instruction (set + tag).
    pub xb_ip: Addr,
    /// IP of the entry instruction (model-level validation only).
    pub entry_ip: Addr,
    /// Banks holding the XB portion reachable from this entry.
    pub mask: BankMask,
    /// Uops counted backward from the XB end; where to enter.
    pub offset: u8,
}

impl XbPtr {
    /// Creates a pointer.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is zero (an empty fetch is meaningless).
    pub fn new(xb_ip: Addr, entry_ip: Addr, mask: BankMask, offset: u8) -> Self {
        assert!(offset >= 1, "XB pointers must cover at least one uop");
        XbPtr { xb_ip, entry_ip, mask, offset }
    }
}

impl fmt::Display for XbPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XB[{} entry={} mask={} off={}]",
            self.xb_ip, self.entry_ip, self.mask, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_operations() {
        let mut m = BankMask::EMPTY;
        assert!(m.is_empty());
        m.insert(0);
        m.insert(3);
        assert_eq!(m.count(), 2);
        assert!(m.contains(0) && m.contains(3) && !m.contains(1));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(m.bits(), 0b1001);
    }

    #[test]
    fn mask_set_algebra() {
        let a = BankMask::from_bits(0b0011);
        let b = BankMask::from_bits(0b0110);
        assert!(a.intersects(b));
        assert_eq!(a.union(b).bits(), 0b0111);
        assert!(!a.intersects(BankMask::from_bits(0b1000)));
        assert_eq!(BankMask::single(2).bits(), 0b0100);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BankMask::from_bits(0b1010).to_string(), "1010");
        let p = XbPtr::new(Addr::new(0x10), Addr::new(0x8), BankMask::from_bits(0b0011), 7);
        assert!(p.to_string().contains("off=7"));
    }

    #[test]
    #[should_panic(expected = "at least one uop")]
    fn zero_offset_rejected() {
        let _ = XbPtr::new(Addr::new(0x10), Addr::new(0x8), BankMask::EMPTY, 0);
    }
}
