#!/usr/bin/env bash
# Regenerates every figure, table and ablation recorded in EXPERIMENTS.md.
# Usage: scripts/regen.sh [INSTS] (default 1000000)
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-1000000}"
ABL_INSTS=$((INSTS / 3))
mkdir -p results
cargo build --release -p xbc-bench

B=target/release
$B/fig1    --inst "$INSTS"                                  | tee results/fig1.txt
$B/fig8    --inst "$INSTS" --json results/fig8.json         | tee results/fig8.txt
$B/fig9    --inst "$INSTS" --json results/fig9.json         | tee results/fig9.txt
$B/fig10   --inst "$INSTS" --json results/fig10.json        | tee results/fig10.txt
$B/summary --inst "$INSTS"                                  | tee results/summary.txt
for m in promotion banks placement setsearch xbtb xbs xbq predictor tcpath baselines; do
  $B/ablation "$m" --inst "$ABL_INSTS" | tee "results/ablation_$m.txt"
done
echo "all results regenerated under results/"
