//! Instruction cache model.
//!
//! Build mode in both the trace-cache baseline and the XBC frontend fetches
//! raw instruction bytes through this cache (paper §2.1 / Figure 6). Only
//! timing/presence is modeled — the bytes themselves live in the program
//! image — so the payload is `()`.

use crate::cache::{CacheStats, SetAssoc};
use xbc_isa::Addr;

/// Configuration of an [`ICache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (fetch granularity).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Extra cycles charged on a miss (L2/memory round trip).
    pub miss_penalty: u64,
}

impl Default for ICacheConfig {
    /// A 64 KiB, 4-way, 32 B-line cache with a 10-cycle miss penalty —
    /// comfortably sized so that, as in the paper, IC misses are not the
    /// first-order effect.
    fn default() -> Self {
        ICacheConfig { size_bytes: 64 * 1024, line_bytes: 32, ways: 4, miss_penalty: 10 }
    }
}

impl ICacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `line_bytes × ways`, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0 && self.size_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines.is_multiple_of(self.ways), "capacity must divide evenly into ways");
        lines / self.ways
    }
}

/// Outcome of one instruction-cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IcAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Cycles of penalty charged (0 on a hit).
    pub penalty: u64,
}

/// A set-associative instruction cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use xbc_uarch::{ICache, ICacheConfig};
/// use xbc_isa::Addr;
///
/// let mut ic = ICache::new(ICacheConfig { size_bytes: 1024, line_bytes: 32, ways: 2, miss_penalty: 7 });
/// let first = ic.fetch(Addr::new(0x40));
/// assert!(!first.hit);
/// assert_eq!(first.penalty, 7);
/// assert!(ic.fetch(Addr::new(0x5f)).hit); // same 32-byte line
/// ```
#[derive(Clone, Debug)]
pub struct ICache {
    cfg: ICacheConfig,
    cache: SetAssoc<()>,
}

impl ICache {
    /// Creates an empty cache for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`ICacheConfig::sets`]).
    pub fn new(cfg: ICacheConfig) -> Self {
        let sets = cfg.sets();
        ICache { cfg, cache: SetAssoc::new(sets, cfg.ways) }
    }

    /// The configured geometry.
    pub fn config(&self) -> ICacheConfig {
        self.cfg
    }

    /// Address of the first byte of the line containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: Addr) -> Addr {
        Addr::new(addr.raw() & !(self.cfg.line_bytes as u64 - 1))
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.raw() / self.cfg.line_bytes as u64;
        let sets = self.cache.sets() as u64;
        ((line % sets) as usize, line / sets)
    }

    /// Fetches the line containing `addr`, allocating it on a miss.
    pub fn fetch(&mut self, addr: Addr) -> IcAccess {
        let (set, tag) = self.set_and_tag(addr);
        if self.cache.get(set, tag).is_some() {
            IcAccess { hit: true, penalty: 0 }
        } else {
            self.cache.insert(set, tag, ());
            IcAccess { hit: false, penalty: self.cfg.miss_penalty }
        }
    }

    /// Cache statistics (hits/misses/evictions).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Forgets statistics, keeping contents (for warm-up discard).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ICache {
        ICache::new(ICacheConfig { size_bytes: 256, line_bytes: 32, ways: 2, miss_penalty: 5 })
    }

    #[test]
    fn geometry() {
        let ic = small();
        assert_eq!(ic.config().sets(), 4);
    }

    #[test]
    fn same_line_hits() {
        let mut ic = small();
        assert!(!ic.fetch(Addr::new(0x100)).hit);
        assert!(ic.fetch(Addr::new(0x11f)).hit);
        assert!(!ic.fetch(Addr::new(0x120)).hit); // next line
    }

    #[test]
    fn miss_penalty_charged_once() {
        let mut ic = small();
        assert_eq!(ic.fetch(Addr::new(0)).penalty, 5);
        assert_eq!(ic.fetch(Addr::new(0)).penalty, 0);
    }

    #[test]
    fn capacity_evictions_occur() {
        let mut ic = small();
        // 4 sets × 2 ways × 32B = 256B. Walk 3 lines mapping to set 0:
        // line addresses 0, 4*32=128... with 4 sets, stride 128 bytes maps to
        // the same set.
        ic.fetch(Addr::new(0));
        ic.fetch(Addr::new(128));
        ic.fetch(Addr::new(256));
        assert_eq!(ic.stats().evictions, 1);
        // Oldest (0) was evicted.
        assert!(!ic.fetch(Addr::new(0)).hit);
    }

    #[test]
    fn line_of_masks_low_bits() {
        let ic = small();
        assert_eq!(ic.line_of(Addr::new(0x47)), Addr::new(0x40));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ =
            ICache::new(ICacheConfig { size_bytes: 90, line_bytes: 30, ways: 1, miss_penalty: 0 });
    }
}
