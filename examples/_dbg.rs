use xbc::*;
use xbc_frontend::*;
use xbc_workload::*;
use std::collections::HashSet;

fn main() {
    let n = 500_000;
    let sizes = [2048usize, 4096, 8192, 16384, 32768, 65536];
    let mut agg_x = [0.0f64; 6];
    let mut agg_t = [0.0f64; 6];
    let mut agg_bwx = 0.0; let mut agg_bwt = 0.0;
    let traces = standard_traces();
    for spec in &traces {
        let t = spec.capture(n);
        let mut seen = HashSet::new();
        let mut fp = 0usize;
        for d in t.iter() { if seen.insert(d.inst.ip.raw()) { fp += d.inst.uops as usize; } }
        print!("{:16} fp={:6}", spec.name, fp);
        for (i, &total) in sizes.iter().enumerate() {
            let mut xbc = XbcFrontend::new(XbcConfig { total_uops: total, ..Default::default() });
            let mut tc = TraceCacheFrontend::new(TcConfig { total_uops: total, ..Default::default() });
            let mx = xbc.run(&t);
            let mt = tc.run(&t);
            agg_x[i] += mx.uop_miss_rate(); agg_t[i] += mt.uop_miss_rate();
            if total == 32768 { agg_bwx += mx.delivery_bandwidth(); agg_bwt += mt.delivery_bandwidth(); }
            print!(" |{:5.1}/{:4.1}", 100.0*mx.uop_miss_rate(), 100.0*mt.uop_miss_rate());
        }
        println!();
    }
    println!("sizes: 2K 4K 8K 16K 32K 64K   cell = XBC%/TC%");
    print!("AVG             ");
    for i in 0..6 {
        print!(" |{:5.1}/{:4.1}", 100.0*agg_x[i]/21.0, 100.0*agg_t[i]/21.0);
    }
    println!();
    print!("reduction       ");
    for i in 0..6 { print!(" | {:5.1}%  ", 100.0*(1.0 - agg_x[i]/agg_t[i])); }
    println!();
    println!("avg bw at 32K: xbc={:.2} tc={:.2}", agg_bwx/21.0, agg_bwt/21.0);
}
