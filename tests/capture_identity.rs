//! Streamed capture is *byte-identical* to resident capture-then-save
//! for every trace in the standard suite (DESIGN.md §16).
//!
//! This is the contract everything downstream leans on: the
//! content-addressed store, the CRC-validated XBT1 reader, and the
//! byte-level dedup between a daemon's streamed capture and a sweep's
//! resident one all assume the two paths produce the same file. The
//! streaming encoder writes the header before the run's `ExecStats`
//! exist and backpatches them (combining the record CRC with
//! `crc32_combine`), so identity is asserted here over the whole suite
//! rather than trusted.

use std::io::Cursor;

use xbc_workload::{standard_traces, InstSource, TraceStream};

#[test]
fn streamed_capture_is_byte_identical_for_every_standard_trace() {
    const INSTS: usize = 20_000;
    for spec in standard_traces() {
        // Resident: capture into memory, then serialize.
        let resident = {
            let trace = spec.capture(INSTS);
            let mut buf = Vec::new();
            trace.save(&mut buf).unwrap();
            buf
        };

        // Streamed: encode chunks as they execute, never holding the
        // whole instruction vector; the chunk callback re-checks the
        // running instruction count on the way through.
        let mut streamed = Vec::new();
        let mut seen = 0u64;
        let stats = spec
            .capture_streamed(INSTS, Cursor::new(&mut streamed), |chunk, done| {
                seen += chunk.len() as u64;
                assert_eq!(seen, done, "{}: chunk totals drifted", spec.name);
            })
            .unwrap();
        assert_eq!(seen, INSTS as u64, "{}: chunks did not cover the capture", spec.name);
        assert_eq!(stats.insts, INSTS as u64, "{}: stats inst count", spec.name);

        assert_eq!(
            resident.len(),
            streamed.len(),
            "{}: streamed and resident encodings differ in length",
            spec.name
        );
        assert!(
            resident == streamed,
            "{}: streamed capture is not byte-identical to resident capture",
            spec.name
        );

        // And the bytes are a valid, CRC-clean XBT1 stream.
        let mut reader = TraceStream::new(&streamed[..]).unwrap();
        assert_eq!(reader.name(), spec.name);
        let mut n = 0u64;
        while let Some(d) = reader.next_inst() {
            assert!(d.uops() > 0);
            n += 1;
        }
        assert_eq!(n, INSTS as u64, "{}: decoded instruction count", spec.name);
    }
}
