//! Streaming instruction sources.
//!
//! The paper's traces are 30M instructions; server-class follow-ups
//! (ROADMAP item 3) want billions. Holding a `Vec<DynInst>` per trace
//! caps what a host can replay, so the replay path also accepts an
//! [`InstSource`]: a pull-based producer of committed instructions that
//! the oracle cursor consumes through a bounded sliding window, keeping
//! host memory O(window) instead of O(trace).
//!
//! [`TraceStream`] adapts the `XBT1` streaming decoder
//! ([`crate::codec::TraceReader`]) into an `InstSource`, so a trace on
//! disk replays without ever being materialized. [`IterSource`] adapts
//! any in-memory iterator (tests, generators).

use crate::codec::{TraceError, TraceReader};
use crate::exec::{DynInst, ExecStats};
use std::io::Read;

/// A pull-based producer of committed dynamic instructions.
///
/// The contract is exactly `Iterator<Item = DynInst>` minus the blanket
/// machinery: `next_inst` returns instructions in committed order and
/// `None` once — permanently — at end of stream. Sources are consumed
/// by `OracleStream::streaming` (in `xbc-frontend`), which buffers a
/// bounded lookahead window on top.
pub trait InstSource {
    /// The next committed instruction, or `None` at end of stream.
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Diagnostic name of the stream (trace name where known).
    fn source_name(&self) -> &str {
        "<stream>"
    }
}

/// Streams a serialized `XBT1` trace as an [`InstSource`], decoding one
/// record at a time — O(1) memory however long the trace is.
///
/// # Panics
///
/// `next_inst` panics on mid-stream corruption (I/O error, CRC
/// mismatch, truncation). A replay that has already delivered uops from
/// a stream that turns out to be corrupt cannot produce a correct
/// result, so there is nothing graceful left to do; callers that need
/// corruption to degrade to a miss (the store) validate the whole file
/// with a cheap streaming pre-pass first (`Store::open_trace_stream`).
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, TraceStream};
///
/// let trace = standard_traces()[0].capture(500);
/// let mut buf = Vec::new();
/// trace.save(&mut buf).unwrap();
/// let mut stream = TraceStream::new(buf.as_slice()).unwrap();
/// assert_eq!(stream.name(), trace.name());
/// assert_eq!(stream.inst_count(), 500);
/// ```
pub struct TraceStream<R: Read> {
    reader: TraceReader<R>,
    yielded: u64,
}

impl<R: Read> TraceStream<R> {
    /// Opens a stream over serialized trace bytes, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on a bad magic, malformed header or
    /// format-version mismatch.
    pub fn new(input: R) -> Result<Self, TraceError> {
        Ok(TraceStream { reader: TraceReader::new(input)?, yielded: 0 })
    }

    /// Trace name from the header.
    pub fn name(&self) -> &str {
        self.reader.name()
    }

    /// Dynamic instruction count declared in the header.
    pub fn inst_count(&self) -> u64 {
        self.reader.inst_count()
    }

    /// Executor statistics recorded at capture time.
    pub fn exec_stats(&self) -> ExecStats {
        self.reader.exec_stats()
    }
}

impl<R: Read> crate::stream::InstSource for TraceStream<R> {
    fn next_inst(&mut self) -> Option<DynInst> {
        match self.reader.next() {
            None => None,
            Some(Ok(d)) => {
                self.yielded += 1;
                Some(d)
            }
            Some(Err(e)) => panic!(
                "streaming replay of {:?} failed after {} instructions: {e}",
                self.reader.name(),
                self.yielded
            ),
        }
    }

    fn source_name(&self) -> &str {
        self.reader.name()
    }
}

/// Adapts any in-memory instruction iterator into an [`InstSource`]
/// (resident replays, tests, synthetic generators).
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, IterSource, InstSource};
///
/// let trace = standard_traces()[0].capture(10);
/// let mut src = IterSource::new(trace.insts().iter().copied());
/// assert!(src.next_inst().is_some());
/// ```
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = DynInst>> IterSource<I> {
    /// Wraps `iter` as an instruction source.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = DynInst>> InstSource for IterSource<I> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.iter.next()
    }

    fn source_name(&self) -> &str {
        "<iter>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_traces;

    #[test]
    fn trace_stream_yields_the_resident_sequence() {
        let trace = standard_traces()[1].capture(700);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let mut s = TraceStream::new(buf.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(d) = s.next_inst() {
            got.push(d);
        }
        assert_eq!(got, trace.insts());
        assert_eq!(s.next_inst(), None, "a drained stream stays drained");
    }

    #[test]
    #[should_panic(expected = "streaming replay")]
    fn trace_stream_panics_on_midstream_corruption() {
        let trace = standard_traces()[2].capture(400);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut s = TraceStream::new(buf.as_slice()).unwrap();
        while s.next_inst().is_some() {}
    }

    #[test]
    fn iter_source_drains_in_order() {
        let trace = standard_traces()[0].capture(50);
        let mut src = IterSource::new(trace.insts().iter().copied());
        for want in trace.insts() {
            assert_eq!(src.next_inst().as_ref(), Some(want));
        }
        assert_eq!(src.next_inst(), None);
    }
}
