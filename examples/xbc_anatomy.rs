//! Dissects a running XBC: how the stored XB population, redundancy, and
//! pointer health evolve as a workload executes — using the inspection
//! APIs (`XbcArray::population`, `redundancy`, `XbcFrontend::xbtb_stats`).
//!
//! ```text
//! cargo run --release --example xbc_anatomy [trace-name]
//! ```

use xbc::{PromotionMode, XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;
use xbc_workload::standard_traces;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "spec.gcc".to_owned());
    let spec = standard_traces().into_iter().find(|t| t.name == name).unwrap_or_else(|| {
        eprintln!("unknown trace {name}");
        std::process::exit(2);
    });

    println!("anatomy of an XBC running {} (32K uops)", spec.name);
    println!();
    println!(
        "{:>8} {:>8} {:>7} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "insts", "miss%", "XBs", "complex", "avg-len", "occup%", "dup%", "searches"
    );

    let mut fe = XbcFrontend::new(XbcConfig::default());
    let mut total_insts = 0usize;
    // Grow the replay in chunks; frontend state persists across runs, so
    // each chunk continues warming the same structures.
    for chunk in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let trace = spec.capture(total_insts + chunk);
        // Re-run from scratch on the longer prefix with a fresh frontend to
        // keep the numbers interpretable as "after N instructions".
        fe = XbcFrontend::new(XbcConfig::default());
        let m = fe.run(&trace);
        total_insts += chunk;
        let pop = fe.array().population();
        let (stored, distinct) = fe.array().redundancy();
        println!(
            "{:>8} {:>7.2}% {:>7} {:>9} {:>8.2} {:>8.1}% {:>7.2}% {:>8}",
            trace.inst_count(),
            100.0 * m.uop_miss_rate(),
            pop.xb_count,
            pop.complex_count,
            pop.length_hist.mean(),
            100.0 * pop.stored_uops as f64 / fe.config().total_uops as f64,
            100.0 * (stored - distinct) as f64 / stored.max(1) as f64,
            m.set_searches,
        );
    }

    println!();
    println!("resident XB length distribution (uops):");
    let pop = fe.array().population();
    for (len, count) in pop.length_hist.iter() {
        if count > 0 {
            let bar = "#".repeat((count as usize * 50 / pop.xb_count.max(1)).min(60));
            println!("  {len:>3}: {count:>5} {bar}");
        }
    }
    println!();
    println!("promotion mode: {} | XBTB: {:?}", PromotionMode::Chain, fe.xbtb_stats());
}
