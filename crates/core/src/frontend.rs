//! The XBC-based frontend (paper §3.5–§3.6, Figure 6).
//!
//! Delivery mode follows XBTB pointers: each cycle the XBTB supplies up to
//! `xbs_per_cycle` next-XB pointers (conditionals resolved by the XBP,
//! indirects by the XiBTB, returns by the XRSB); the priority encoder
//! fetches the pointed-to XBs from the banked array — a bank conflict
//! defers the tail of the second XB — and the XBQ drains to the renamer at
//! 8 uops/cycle. Promoted branches (§3.8) chain to their frequent-path
//! successor without consuming prediction bandwidth, emulating the merged
//! XB. On a mis-fetch or XBTB miss the frontend falls back to the shared
//! IC build pipeline, where the XFU (re)builds XBs and repairs the pointer
//! graph.

use crate::array::{XbFetch, XbcArray};
use crate::config::{PromotionMode, XbcConfig};
use crate::invariants::XbcInvariants;
use crate::ptr::{BankMask, XbPtr};
use crate::xbtb::{MergedXb, XbEndKind, Xbtb, XbtbEntry, XbtbStats};
use crate::xfu::{install_with, InstallKind, InstallScratch, Xfu};

use std::collections::HashSet;
use xbc_frontend::{BuildEngine, Frontend, FrontendMetrics, OracleStream, Predictors, Probe};
use xbc_isa::{Addr, Uop};
use xbc_obs::{
    CycleKind, D2bCause, Event, EventSink, FillKind, LookupKind, MispredictKind, UopSource,
};
use xbc_predict::{IndirectPredictor, ReturnStack};
use xbc_workload::DynInst;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Build,
    Delivery,
}

/// One XRSB frame: a pointer to the XBTB entry of the call-ended XB that
/// pushed it (paper §3.5 pushes entry pointers, so the return-point
/// pointer is read — and may have been healed — at pop time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct XrsbFrame {
    call_xb: Addr,
}

/// A pointer slot waiting to be filled once the successor XB's identity is
/// known ("the XBTB entry of the previously executed XB is updated to
/// point to XB_new", §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkFrom {
    /// A taken/not-taken (or call/fall continuation) slot of an entry.
    Slot { xb_ip: Addr, taken: bool },
    /// An XiBTB slot, with the path history captured at resolution.
    Indirect { xb_ip: Addr, history: u64 },
}

/// What to do once the XBQ drains. `build` carries the delivery→build
/// switch cause so the eventual [`Event::SwitchToBuild`] emission charges
/// the right counter — every switch has exactly one cause by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct AfterDrain {
    penalty: u64,
    build: Option<D2bCause>,
}

/// Outcome of resolving an XB's ending branch during fetch.
enum EndAction {
    /// Keep chaining; `free` transitions (promoted branches) do not consume
    /// a prediction slot.
    Continue { free: bool },
    /// Stop fetching this cycle (penalty and/or build switch scheduled).
    Stop,
}

/// The eXtended Block Cache frontend.
///
/// # Examples
///
/// ```
/// use xbc::{XbcConfig, XbcFrontend};
/// use xbc_frontend::Frontend;
/// use xbc_workload::standard_traces;
///
/// let trace = standard_traces()[0].capture(20_000);
/// let mut fe = XbcFrontend::new(XbcConfig::default());
/// let m = fe.run(&trace);
/// assert!(m.structure_uops > 0, "the XBC must deliver something");
/// ```
#[derive(Clone, Debug)]
pub struct XbcFrontend {
    cfg: XbcConfig,
    array: XbcArray,
    xbtb: Xbtb,
    xfu: Xfu,
    engine: BuildEngine,
    preds: Predictors,
    xibtb: IndirectPredictor<XbPtr>,
    xrsb: ReturnStack<XrsbFrame>,
    mode: Mode,
    /// Next XB to fetch in delivery mode.
    cur: Option<XbPtr>,
    /// Where `cur` was read from, so set-search repairs can be written
    /// back ("Set-search repairs the XBTB", §3.10).
    cur_src: Option<LinkFrom>,
    /// Uops accepted into the XBQ, not yet through the renamer.
    pending_uops: usize,
    after_drain: Option<AfterDrain>,
    /// Delivery-mode stall cycles outstanding.
    stall: u64,
    link_from: Option<LinkFrom>,
    /// Banks of the most recently placed XB (smart placement).
    last_mask: BankMask,
    /// Identities of merge-mode combined blocks ever created. Their tags
    /// legally bury a promoted conditional mid-block, so the structural
    /// audit exempts them from the single-exit rule. Kept as a
    /// conservative superset: de-promotion dissolves a combination
    /// logically, but its lines stay in the array until evicted.
    merged_ids: HashSet<Addr>,
    /// Install/extend events since creation (paces the full audits).
    audit_events: u64,
    /// Reusable install buffers (decoded block + stored readback), so the
    /// build path re-allocates nothing per installed XB (DESIGN.md §12).
    install_scratch: InstallScratch,
    /// Reusable combined-uop buffer for merge-mode block combination.
    merge_buf: Vec<Uop>,
    /// Debug counters for return-misprediction causes:
    /// `[frame-none, entry-gone, ptr-none, mismatch]`.
    #[doc(hidden)]
    pub ret_debug: [u64; 4],
    /// Debug counters for stale successor pointers, by the predecessor's
    /// end kind: `[cond, call, ret, indirect, fall]`.
    #[doc(hidden)]
    pub stale_debug: [u64; 5],
}

impl XbcFrontend {
    /// Creates a cold XBC frontend.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: XbcConfig) -> Self {
        cfg.validate();
        XbcFrontend {
            array: XbcArray::new(&cfg),
            xbtb: Xbtb::new(cfg.xbtb_entries),
            xfu: Xfu::new(cfg.max_xb_uops),
            engine: BuildEngine::new(cfg.icache, cfg.btb, cfg.decoder, cfg.timing),
            preds: Predictors::new(cfg.gshare),
            // History-hashed XiBTB, matching the indirect predictor the
            // other frontends use.
            xibtb: IndirectPredictor::new(12, 6),
            xrsb: ReturnStack::new(32),
            mode: Mode::Build,
            cur: None,
            cur_src: None,
            pending_uops: 0,
            after_drain: None,
            stall: 0,
            link_from: None,
            last_mask: BankMask::EMPTY,
            merged_ids: HashSet::new(),
            audit_events: 0,
            install_scratch: InstallScratch::default(),
            merge_buf: Vec::new(),
            ret_debug: [0; 4],
            stale_debug: [0; 5],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XbcConfig {
        &self.cfg
    }

    /// Replaces the predictor complement (for predictor ablations); call
    /// before the first `run`.
    pub fn set_predictors(&mut self, preds: Predictors) {
        self.preds = preds;
    }

    /// The banked array (inspection / audits).
    pub fn array(&self) -> &XbcArray {
        &self.array
    }

    /// XBTB statistics.
    pub fn xbtb_stats(&self) -> XbtbStats {
        self.xbtb.stats()
    }

    /// The array-coordinate form of [`XbcFrontend::merged_ids`], for the
    /// single-exit exemption.
    fn merged_tags(&self) -> HashSet<(usize, u64)> {
        self.merged_ids.iter().map(|&ip| self.array.set_and_tag(ip)).collect()
    }

    /// Full structural audit: array storage rules + differential census,
    /// XBTB pointer sanity, XFU build state. Always compiled (and cheap
    /// relative to a whole run), so checkers can call it explicitly via
    /// [`Frontend::check_invariants`] regardless of build flavour.
    fn audit_full(&self) -> Result<(), String> {
        XbcInvariants::check_with(&self.array, &self.merged_tags())?;
        XbcInvariants::check_xbtb(&self.xbtb, &self.array)?;
        XbcInvariants::check_xfu(&self.xfu)
    }

    /// Invariant hook after an install/extend event: audits the touched
    /// set every time and everything every 1024 events. The audit body is
    /// compiled only under the `check` feature or `debug_assertions`, so
    /// release throughput is untouched.
    #[inline]
    #[allow(unused_variables)]
    fn audit_after_install(&mut self, set: usize) {
        self.audit_events += 1;
        #[cfg(any(feature = "check", debug_assertions))]
        {
            if let Err(e) = self.array.audit_set(set, &self.merged_tags()) {
                panic!("XBC invariant violated after install (set {set}): {e}");
            }
            if self.audit_events.is_multiple_of(1024) {
                if let Err(e) = self.audit_full() {
                    panic!("XBC invariant violated: {e}");
                }
            }
        }
    }

    fn refresh_promotion<S: EventSink>(
        cfg: &XbcConfig,
        entry: &mut XbtbEntry,
        probe: &mut Probe<'_, S>,
    ) {
        if !cfg.promotion.enabled() {
            return;
        }
        match (entry.promoted, entry.bias.bias()) {
            (None, Some(b)) => {
                entry.promoted = Some(b);
                probe.emit(Event::Promotion);
            }
            (Some(p), cur) if cur != Some(p) => {
                entry.promoted = None;
                entry.merged = None; // de-promotion dissolves the combination
                probe.emit(Event::Depromotion);
            }
            _ => {}
        }
    }

    /// Physically merges a promoted XB0 with its monotonic successor
    /// (§3.8, [`PromotionMode::Merge`]): the combined uops are written into
    /// XB1's set (sharing XB1's whole suffix lines, complex-XB style), the
    /// original XB0 lines are LRU-demoted, and the entry records the
    /// combination. Returns `true` on success; failures (missing pointer,
    /// over-quota combination, evicted pieces) leave chaining in effect.
    fn try_merge(&mut self, xb0_ip: Addr) -> bool {
        let Some(e0) = self.xbtb.get_mut(xb0_ip) else { return false };
        let Some(dir) = e0.promoted else { return false };
        let Some(ptr1) = e0.successor(dir.as_taken()) else { return false };
        if ptr1.xb_ip == xb0_ip {
            return false; // a self-loop cannot merge with itself
        }
        let (set0, tag0) = self.array.set_and_tag(xb0_ip);
        let Some(asm0) = self.array.assemble(set0, tag0, None) else { return false };
        let len0 = asm0.total_uops;
        let combined_len = len0 + ptr1.offset as usize;
        if combined_len > self.cfg.max_xb_uops {
            return false;
        }
        let (set1, tag1) = self.array.set_and_tag(ptr1.xb_ip);
        let Some(asm1) = self.array.assemble(set1, tag1, Some(ptr1.mask)) else { return false };
        if asm1.total_uops < ptr1.offset as usize {
            return false;
        }
        let mut combined = std::mem::take(&mut self.merge_buf);
        combined.clear();
        self.array.read_uops_into(set0, &asm0, &mut combined);
        self.array.read_window_into(set1, &asm1, ptr1.offset as usize, &mut combined);
        // Share XB1's whole suffix lines; the partially-shared line (if the
        // window is not line-aligned) duplicates, as in any complex XB.
        let shared = ptr1.offset as usize / self.array.line_uops();
        let mut suffix_mask = BankMask::EMPTY;
        for &(bank, _) in &asm1.lines[..shared] {
            suffix_mask.insert(bank as usize);
        }
        let added = self.array.insert(ptr1.xb_ip, &combined, shared, suffix_mask, BankMask::EMPTY);
        self.merge_buf = combined;
        self.array.demote_lru(xb0_ip);
        // The combined lines are in the array whatever happens below, so
        // the audit exemption must cover them from here on.
        self.merged_ids.insert(ptr1.xb_ip);
        let merged = MergedXb {
            xb_ip: ptr1.xb_ip,
            mask: suffix_mask.union(added),
            total_len: combined_len as u8,
            suffix_len: ptr1.offset,
        };
        let ok = if let Some(e0) = self.xbtb.get_mut(xb0_ip) {
            e0.merged = Some(merged);
            true
        } else {
            false
        };
        self.audit_after_install(set1);
        ok
    }

    /// In merge mode, rewrites a pointer into a promoted-and-merged XB0 so
    /// it enters the combined block instead. Validates the promoted
    /// direction against the committed path first; on a violation the
    /// original pointer is kept and normal resolution charges the
    /// mis-fetch. `window` is the uops already accepted this cycle.
    fn substitute_merged<S: EventSink>(
        &mut self,
        ptr: XbPtr,
        window: usize,
        oracle: &OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) -> Option<XbPtr> {
        if self.cfg.promotion != PromotionMode::Merge {
            return None;
        }
        let e = self.xbtb.get_mut(ptr.xb_ip)?;
        if e.kind != XbEndKind::Cond {
            return None;
        }
        let dir = e.promoted?;
        if e.merged.is_none() {
            self.try_merge(ptr.xb_ip);
        }
        let e = self.xbtb.get_mut(ptr.xb_ip)?;
        let m = e.merged?;
        if ptr.offset + m.suffix_len > m.total_len {
            // The pointer enters deeper into XB0 than the combination
            // covers (XB0 shrank before the merge): not substitutable.
            return None;
        }
        // Check the promoted branch's committed outcome at XB0's end.
        let (d0, _) = oracle.window_end(window + ptr.offset as usize)?;
        if d0.taken != dir.as_taken() {
            return None; // violation: fetch XB0 normally, resolve penalizes
        }
        let d0 = *d0;
        let e = self.xbtb.get_mut(ptr.xb_ip).expect("still resident");
        e.bias.update(d0.taken);
        Self::refresh_promotion(&self.cfg, e, probe);
        let comb = XbPtr::new(m.xb_ip, ptr.entry_ip, m.mask, ptr.offset + m.suffix_len);
        // Heal the source pointer to the combined block (§3.8: "the XBTB
        // entry is then updated to point to XB_comb").
        if let Some(src) = self.cur_src {
            self.write_slot(src, comb);
        }
        Some(comb)
    }

    fn apply_link(&mut self, successor: XbPtr) {
        let Some(link) = self.link_from.take() else { return };
        self.write_slot(link, successor);
    }

    fn write_slot(&mut self, link: LinkFrom, successor: XbPtr) {
        match link {
            LinkFrom::Slot { xb_ip, taken } => {
                if let Some(e) = self.xbtb.get_mut(xb_ip) {
                    e.set_successor(taken, successor);
                }
            }
            LinkFrom::Indirect { xb_ip, history } => {
                self.xibtb.update(xb_ip, history, successor);
            }
        }
    }

    /// Chooses the successor pointer for a fetched XB at delivery-fetch
    /// resolution, updating the predictors and XRSB.
    ///
    /// Returns `(next, consumed_slot, mispredicted)`.
    fn select_successor<S: EventSink>(
        &mut self,
        xb_ip: Addr,
        slot: Option<u32>,
        d_end: &DynInst,
        probe: &mut Probe<'_, S>,
    ) -> (Option<XbPtr>, bool, bool) {
        // The caller already probed the slot; only the statistics/LRU
        // side of a `get` remains to be applied here.
        probe.note(|| Event::Lookup { what: LookupKind::Xbtb, hit: slot.is_some() });
        let Some(slot) = slot else {
            self.xbtb.note_miss();
            return (None, true, false);
        };
        self.xbtb.touch_hit(slot);
        let kind = self.xbtb.at(slot).kind;
        match kind {
            XbEndKind::Fall => (self.xbtb.at(slot).taken, true, false),
            XbEndKind::Cond => {
                let taken = d_end.taken;
                let promoted = self.xbtb.at(slot).promoted;
                if let Some(dir) = promoted.filter(|_| self.cfg.promotion.enabled()) {
                    // Promoted: no prediction consumed; following the
                    // monotonic direction. A violation is a mis-fetch whose
                    // recovery pointer lives in the same entry (§3.8).
                    let e = self.xbtb.at_mut(slot);
                    e.bias.update(taken);
                    Self::refresh_promotion(&self.cfg, e, probe);
                    let e = self.xbtb.at(slot);
                    let follows = dir.as_taken() == taken;
                    let next = e.successor(taken);
                    if follows {
                        (next, false, false)
                    } else {
                        probe.emit(Event::Mispredict(MispredictKind::Cond));
                        (next, false, true)
                    }
                } else {
                    let pred = self.preds.dir.predict(xb_ip);
                    self.preds.dir.update(xb_ip, taken);
                    let e = self.xbtb.at_mut(slot);
                    e.bias.update(taken);
                    Self::refresh_promotion(&self.cfg, e, probe);
                    let next = self.xbtb.at(slot).successor(taken);
                    if pred == taken {
                        (next, true, false)
                    } else {
                        probe.emit(Event::Mispredict(MispredictKind::Cond));
                        (next, true, true)
                    }
                }
            }
            XbEndKind::Call => {
                let next = self.xbtb.at(slot).taken;
                self.xrsb.push(XrsbFrame { call_xb: xb_ip });
                (next, true, false)
            }
            XbEndKind::Return => {
                let frame = self.xrsb.pop();
                probe.note(|| Event::Lookup { what: LookupKind::Xrsb, hit: frame.is_some() });
                if let Some(f) = frame {
                    // The XB after the return will refresh the call entry's
                    // return-point pointer.
                    self.link_from = Some(LinkFrom::Slot { xb_ip: f.call_xb, taken: false });
                }
                let predicted =
                    frame.and_then(|f| self.xbtb.get_mut(f.call_xb).and_then(|e| e.not_taken));
                match (frame, predicted) {
                    (None, _) => self.ret_debug[0] += 1,
                    (Some(f), None) => {
                        if self.xbtb.get_mut(f.call_xb).is_none() {
                            self.ret_debug[1] += 1;
                        } else {
                            self.ret_debug[2] += 1;
                        }
                    }
                    (Some(_), Some(p)) if p.entry_ip != d_end.next_ip => self.ret_debug[3] += 1,
                    _ => {}
                }
                match predicted {
                    Some(p) if p.entry_ip == d_end.next_ip => {
                        // Consume the link (a dangling one would later be
                        // applied to an unrelated XB and corrupt the call
                        // entry's return pointer).
                        self.apply_link(p);
                        (Some(p), true, false)
                    }
                    _ => {
                        probe.emit(Event::Mispredict(MispredictKind::Target));
                        (None, true, true)
                    }
                }
            }
            XbEndKind::Indirect | XbEndKind::IndirectCall => {
                if kind == XbEndKind::IndirectCall {
                    self.xrsb.push(XrsbFrame { call_xb: xb_ip });
                }
                let history = self.preds.dir.history();
                let predicted = self.xibtb.predict(xb_ip, history);
                probe.note(|| Event::Lookup { what: LookupKind::Xibtb, hit: predicted.is_some() });
                self.link_from = Some(LinkFrom::Indirect { xb_ip, history });
                match predicted {
                    Some(p) if p.entry_ip == d_end.next_ip => {
                        // Refresh so repeated targets stay resident.
                        self.apply_link(p);
                        (Some(p), true, false)
                    }
                    _ => {
                        probe.emit(Event::Mispredict(MispredictKind::Target));
                        (None, true, true)
                    }
                }
            }
        }
    }

    /// The slot that feeds the successor pointer of `xb_ip` when its end
    /// resolves in direction `taken` (for set-search write-backs).
    fn successor_source(&mut self, xb_ip: Addr, taken: bool) -> Option<LinkFrom> {
        let slot = self.xbtb.probe_slot(xb_ip)?;
        self.successor_source_at(slot, xb_ip, taken)
    }

    /// [`XbcFrontend::successor_source`] for an already-probed slot.
    fn successor_source_at(&mut self, slot: u32, xb_ip: Addr, taken: bool) -> Option<LinkFrom> {
        let kind = self.xbtb.at(slot).kind;
        Some(match kind {
            XbEndKind::Cond => LinkFrom::Slot { xb_ip, taken },
            XbEndKind::Call | XbEndKind::Fall => LinkFrom::Slot { xb_ip, taken: true },
            XbEndKind::Return => {
                // The return pointer lives in the calling entry; the XRSB
                // frame knows which, but it is popped during resolution.
                // Healing is routed through link_from instead.
                return None;
            }
            XbEndKind::Indirect | XbEndKind::IndirectCall => {
                LinkFrom::Indirect { xb_ip, history: self.preds.dir.history() }
            }
        })
    }

    /// Side-effect-free successor peek used by the build→delivery switch
    /// check: the end effects (bias updates, XRSB frames, links) were
    /// already applied when the block was installed, so this only *reads*
    /// where delivery would go next.
    fn peek_successor(&mut self, xb_ip: Addr, d_end: &DynInst) -> Option<XbPtr> {
        let kind = self.xbtb.get_mut(xb_ip)?.kind;
        match kind {
            XbEndKind::Fall | XbEndKind::Call => self.xbtb.get_mut(xb_ip)?.taken,
            XbEndKind::Cond => self.xbtb.get_mut(xb_ip)?.successor(d_end.taken),
            XbEndKind::Return => {
                // The install loop already popped the frame into link_from.
                match self.link_from {
                    Some(LinkFrom::Slot { xb_ip: call_xb, taken: false }) => {
                        self.xbtb.get_mut(call_xb)?.not_taken
                    }
                    _ => None,
                }
            }
            XbEndKind::Indirect | XbEndKind::IndirectCall => match self.link_from {
                Some(LinkFrom::Indirect { xb_ip: src, history }) if src == xb_ip => {
                    self.xibtb.predict(src, history)
                }
                _ => None,
            },
        }
    }

    /// Resolves the end of a fully fetched XB: picks the successor pointer,
    /// schedules penalties / build switches, and reports whether fetch may
    /// chain on within this cycle.
    fn resolve_xb_end<S: EventSink>(
        &mut self,
        oracle: &OracleStream<'_>,
        window: usize,
        ptr: XbPtr,
        probe: &mut Probe<'_, S>,
    ) -> EndAction {
        let Some((d_end, _)) = oracle.window_end(window) else {
            // Trace ends inside this XB: nothing further to chain.
            self.cur = None;
            return EndAction::Stop;
        };
        let d_end = *d_end;
        if d_end.inst.ip != ptr.xb_ip {
            // The fetched window diverged from the committed path *inside*
            // the block. This only happens for merged combined blocks
            // (§3.8): the promoted conditional buried mid-window resolved
            // against its bias. Hardware discovers the divergence at
            // execute — a mis-fetch: flush, penalty, rebuild.
            probe.emit(Event::Mispredict(MispredictKind::Target));
            self.after_drain = Some(AfterDrain {
                penalty: self.cfg.timing.mispredict_penalty,
                build: Some(D2bCause::Misfetch),
            });
            self.cur = None;
            return EndAction::Stop;
        }

        // One probe covers every same-entry access below (allocation — the
        // only thing that can move entries — cannot happen mid-resolve).
        let slot = self.xbtb.probe_slot(ptr.xb_ip);
        let src = slot.and_then(|s| self.successor_source_at(s, ptr.xb_ip, d_end.taken));
        let (next, consumed, mispredicted) = self.select_successor(ptr.xb_ip, slot, &d_end, probe);

        let Some(slot) = slot else {
            // XBTB miss: must rebuild through the IC path (§3.5).
            self.after_drain = Some(AfterDrain { penalty: 0, build: Some(D2bCause::XbtbMiss) });
            self.cur = None;
            return EndAction::Stop;
        };

        if mispredicted {
            // Flush; recovery continues at `next` when the entry knows the
            // correct path (conditionals), otherwise through build mode.
            let penalty = self.cfg.timing.mispredict_penalty;
            match next {
                Some(p) if p.entry_ip == d_end.next_ip => {
                    self.after_drain = Some(AfterDrain { penalty, build: None });
                    self.cur = Some(p);
                    // Recovery goes down the resolved direction.
                    self.cur_src = Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: d_end.taken });
                }
                _ => {
                    // Remember the slot so the rebuilt successor heals it.
                    let cause = match self.xbtb.at(slot).kind {
                        XbEndKind::Cond | XbEndKind::Call | XbEndKind::Fall => {
                            if self.link_from.is_none() {
                                self.link_from =
                                    Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: d_end.taken });
                            }
                            D2bCause::NoPointer
                        }
                        XbEndKind::Return => D2bCause::Return,
                        XbEndKind::Indirect | XbEndKind::IndirectCall => D2bCause::Indirect,
                    };
                    self.after_drain = Some(AfterDrain { penalty, build: Some(cause) });
                    self.cur = None;
                }
            }
            return EndAction::Stop;
        }

        match next {
            Some(p) if p.entry_ip == d_end.next_ip => {
                // Consume a pending link that describes this very
                // transition (left over from an interrupted build pass).
                if let Some(LinkFrom::Slot { xb_ip, taken }) = self.link_from {
                    if xb_ip == ptr.xb_ip && taken == d_end.taken {
                        self.apply_link(p);
                    }
                }
                self.cur = Some(p);
                self.cur_src = src;
                EndAction::Continue { free: !consumed }
            }
            Some(_) => {
                // Stale pointer: the successor moved or was rebuilt under a
                // different identity — a mis-fetch (§3.5), penalized like a
                // misprediction, repaired through build mode.
                match self.xbtb.at(slot).kind {
                    XbEndKind::Cond => self.stale_debug[0] += 1,
                    XbEndKind::Call => self.stale_debug[1] += 1,
                    XbEndKind::Return => self.stale_debug[2] += 1,
                    XbEndKind::Indirect | XbEndKind::IndirectCall => self.stale_debug[3] += 1,
                    XbEndKind::Fall => self.stale_debug[4] += 1,
                }
                probe.emit(Event::Mispredict(MispredictKind::Target));
                self.link_from = Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: d_end.taken });
                self.after_drain = Some(AfterDrain {
                    penalty: self.cfg.timing.mispredict_penalty,
                    build: Some(D2bCause::StalePointer),
                });
                self.cur = None;
                EndAction::Stop
            }
            None => {
                // Pointer not yet recorded: switch to build, which will
                // fill the slot.
                if self.link_from.is_none() {
                    let kind = self.xbtb.at(slot).kind;
                    if let XbEndKind::Cond | XbEndKind::Call | XbEndKind::Fall = kind {
                        self.link_from =
                            Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: d_end.taken });
                    }
                }
                self.after_drain =
                    Some(AfterDrain { penalty: 0, build: Some(D2bCause::NoPointer) });
                self.cur = None;
                EndAction::Stop
            }
        }
    }

    /// Fetch stage: pulls up to `xbs_per_cycle` XBs (plus free promoted
    /// continuations) into the XBQ. Returns the uops accepted.
    ///
    /// All oracle windows are measured from the *drain* cursor, so queued
    /// (fetched-ahead) uops offset every window by `pending_uops`.
    fn fetch_into_queue<S: EventSink>(
        &mut self,
        oracle: &OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) -> usize {
        let budget = self.cfg.banks * self.cfg.line_uops;
        let base = self.pending_uops;
        let mut used = BankMask::EMPTY;
        let mut slots = self.cfg.xbs_per_cycle;
        let mut accepted = 0usize;
        // Promoted chains are bounded by the uop budget, but guard anyway.
        let mut guard = 0;
        while guard < 32 {
            guard += 1;
            let Some(ptr) = self.cur else {
                if self.after_drain.is_none() {
                    self.after_drain =
                        Some(AfterDrain { penalty: 0, build: Some(D2bCause::NoPointer) });
                }
                break;
            };
            if accepted + ptr.offset as usize > budget {
                if accepted == 0 {
                    // A pointer wider than the fetch network can never be
                    // honoured; rebuild through the IC path instead of
                    // retrying forever.
                    probe.emit(Event::StructureMiss);
                    self.after_drain =
                        Some(AfterDrain { penalty: 0, build: Some(D2bCause::ArrayMiss) });
                }
                break; // alignment network is full this cycle
            }
            // Merge-mode promotion: enter the combined block instead.
            if let Some(comb) = self.substitute_merged(ptr, base + accepted, oracle, probe) {
                if accepted + comb.offset as usize <= budget {
                    self.cur = Some(comb);
                    continue;
                }
            }
            match self.array.fetch_one(&ptr, &mut used) {
                XbFetch::Miss => {
                    if self.cfg.set_search {
                        let mut repaired = self
                            .array
                            .set_search(ptr.xb_ip, ptr.offset)
                            .map(|mask| XbPtr { mask, ..ptr });
                        // Only accept a repair the next lookup will hit
                        // (a mask-vs-lookup disagreement would spin).
                        if let Some(r) = repaired {
                            if self.array.lookup(&r).is_none() {
                                repaired = None;
                            }
                        }
                        probe.emit(Event::SetSearch { hit: repaired.is_some() });
                        if let Some(repaired) = repaired {
                            // Repaired: retry next cycle (one-cycle loss,
                            // §3.9), and write the fresh mask back to the
                            // slot the pointer came from so the search does
                            // not repeat on every visit.
                            self.cur = Some(repaired);
                            if let Some(src) = self.cur_src {
                                self.write_slot(src, repaired);
                            }
                            break;
                        }
                    }
                    probe.emit(Event::StructureMiss);
                    self.after_drain =
                        Some(AfterDrain { penalty: 0, build: Some(D2bCause::ArrayMiss) });
                    break;
                }
                XbFetch::Partial { fetched, deferred } => {
                    probe.emit(Event::BankConflict { deferred: u16::from(deferred) });
                    accepted += fetched as usize;
                    self.cur = Some(XbPtr { offset: deferred, ..ptr });
                    // A mid-XB continuation pointer must never be written
                    // back into a successor slot.
                    self.cur_src = None;
                    break;
                }
                XbFetch::Full => {
                    accepted += ptr.offset as usize;
                    match self.resolve_xb_end(oracle, base + accepted, ptr, probe) {
                        EndAction::Stop => break,
                        EndAction::Continue { free } => {
                            if !free {
                                slots -= 1;
                                if slots == 0 {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        accepted
    }

    fn switch_to_build<S: EventSink>(&mut self, probe: &mut Probe<'_, S>, cause: D2bCause) {
        self.mode = Mode::Build;
        self.xfu.clear();
        self.engine.add_stall(std::mem::take(&mut self.stall));
        probe.emit(Event::SwitchToBuild(cause));
    }

    fn delivery_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        if self.stall > 0 {
            // Nothing happens while stalled: retire every outstanding
            // stall cycle in this one step (the per-cycle event stream is
            // unchanged; only the run-loop round-trips are saved).
            probe.emit_cycles(CycleKind::Stall, std::mem::take(&mut self.stall) as u64);
            return;
        }
        if self.pending_uops == 0 {
            if let Some(ad) = self.after_drain.take() {
                self.stall += ad.penalty;
                if let Some(cause) = ad.build {
                    self.switch_to_build(probe, cause);
                    // The transition consumes this cycle.
                    probe.emit(Event::Cycle(CycleKind::Stall));
                    return;
                }
                if self.stall > 0 {
                    probe.emit_cycles(CycleKind::Stall, std::mem::take(&mut self.stall) as u64);
                    return;
                }
            }
        }
        // Fetch stage. Without an XBQ (depth 0) a new group starts only on
        // an empty queue; with one, fetch runs ahead while there is room
        // for a full-width group and no flush/switch is pending.
        let fetch_width = self.cfg.banks * self.cfg.line_uops;
        let room = if self.cfg.xbq_depth == 0 {
            self.pending_uops == 0
        } else {
            // A queue shallower than one fetch group could otherwise never
            // accept anything; once empty it must take a group regardless
            // (degenerating to the undecoupled depth-0 pacing).
            self.pending_uops == 0 || self.pending_uops + fetch_width <= self.cfg.xbq_depth
        };
        if room && self.after_drain.is_none() && self.stall == 0 {
            let accepted = self.fetch_into_queue(oracle, probe);
            self.pending_uops += accepted;
        }
        if self.pending_uops == 0 {
            // Nothing queued and nothing fetched: a set-search retry or a
            // miss-triggered transition; either way the cycle is lost.
            if let Some(ad) = self.after_drain.take() {
                self.stall += ad.penalty;
                if let Some(cause) = ad.build {
                    self.switch_to_build(probe, cause);
                }
            }
            probe.emit(Event::Cycle(CycleKind::Stall));
            return;
        }
        // Drain through the renamer.
        let budget = self.cfg.timing.renamer_width.min(self.pending_uops);
        let mut delivered = 0usize;
        while delivered < budget {
            let n = oracle.take_uops(budget - delivered);
            if n == 0 {
                // Trace exhausted mid-queue.
                self.pending_uops = delivered;
                break;
            }
            delivered += n;
        }
        self.pending_uops -= delivered;
        if delivered > 0 {
            probe.emit(Event::Uops {
                src: UopSource::Structure,
                n: xbc_obs::saturate_u16(delivered),
            });
        }
        probe.emit(Event::Cycle(CycleKind::Delivery));
    }

    fn build_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        let cycle_kind = self.engine.cycle(oracle, &mut self.preds, probe, &mut self.xfu);
        if cycle_kind == CycleKind::Stall {
            // A stall cycle delivers nothing and builds nothing, so the
            // remaining stall cycles are all identical: retire them in one
            // step instead of one run-loop round-trip each. The event
            // stream (one `Cycle(Stall)` per cycle) is unchanged.
            probe.emit_cycles(CycleKind::Stall, self.engine.take_stall() + 1);
            return;
        }
        let built = std::mem::take(&mut self.xfu.done);
        let mut last: Option<(XbPtr, InstallKind, DynInst)> = None;
        for b in &built {
            let avoid = if self.cfg.smart_placement { self.last_mask } else { BankMask::EMPTY };
            let evicted_before = self.array.stats().evicted_lines;
            let (ptr, kind) = install_with(b, &mut self.array, avoid, &mut self.install_scratch);
            probe.note(|| Event::Fill {
                kind: match kind {
                    InstallKind::Fresh => FillKind::Fresh,
                    InstallKind::Contained => FillKind::Contained,
                    InstallKind::Extended => FillKind::Extended,
                    InstallKind::Complex => FillKind::Complex,
                },
                uops: xbc_obs::saturate_u16(b.uop_count()),
                banks: ptr.mask.count() as u8,
            });
            let evicted = self.array.stats().evicted_lines - evicted_before;
            if evicted > 0 {
                probe.note(|| Event::Eviction { lines: xbc_obs::saturate_u16(evicted as usize) });
            }
            probe.note(|| Event::Occupancy {
                lines: self.array.valid_lines() as u32,
                uops: self.array.stored_uops() as u32,
            });
            self.last_mask = ptr.mask;
            let end = *b.end();
            let end_kind = XbEndKind::from_branch(end.inst.branch);
            self.xbtb.allocate(ptr.xb_ip, end_kind);
            // Heal the predecessor's pointer.
            self.apply_link(ptr);
            // End-of-XB bookkeeping. Branch *predictor* updates already
            // happened inside the build engine; here only XBTB-side state
            // moves: bias counters, XRSB frames, the successor link slot.
            match end_kind {
                XbEndKind::Cond => {
                    let e = self.xbtb.get_mut(ptr.xb_ip).expect("allocated");
                    e.bias.update(end.taken);
                    Self::refresh_promotion(&self.cfg, e, probe);
                    self.link_from = Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: end.taken });
                }
                XbEndKind::Call => {
                    self.xrsb.push(XrsbFrame { call_xb: ptr.xb_ip });
                    self.link_from = Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: true });
                }
                XbEndKind::Return => {
                    self.link_from =
                        self.xrsb.pop().map(|f| LinkFrom::Slot { xb_ip: f.call_xb, taken: false });
                }
                XbEndKind::Indirect | XbEndKind::IndirectCall => {
                    if end_kind == XbEndKind::IndirectCall {
                        self.xrsb.push(XrsbFrame { call_xb: ptr.xb_ip });
                    }
                    self.link_from = Some(LinkFrom::Indirect {
                        xb_ip: ptr.xb_ip,
                        history: self.preds.dir.history(),
                    });
                }
                XbEndKind::Fall => {
                    self.link_from = Some(LinkFrom::Slot { xb_ip: ptr.xb_ip, taken: true });
                }
            }
            last = Some((ptr, kind, end));
            let (set, _) = self.array.set_and_tag(ptr.xb_ip);
            self.audit_after_install(set);
        }
        // Switch check (§3.5): delivery resumes when the block just built
        // was already cached (XBC hit) and the XBTB can point onward.
        if let Some((ptr, InstallKind::Contained, end)) = last {
            if !oracle.done() && oracle.uop_offset() == 0 {
                if let Some(p) = self.peek_successor(ptr.xb_ip, &end) {
                    if p.entry_ip == oracle.fetch_ip() {
                        // The stored mask may be stale (the successor's lines
                        // were re-placed); set search repairs it (§3.9).
                        let repaired = if self.array.lookup(&p).is_some() {
                            Some(p)
                        } else if self.cfg.set_search {
                            let r = self
                                .array
                                .set_search(p.xb_ip, p.offset)
                                .map(|mask| XbPtr { mask, ..p });
                            probe.emit(Event::SetSearch { hit: r.is_some() });
                            r
                        } else {
                            None
                        };
                        if let Some(p) = repaired {
                            self.mode = Mode::Delivery;
                            self.cur_src = self.successor_source(ptr.xb_ip, end.taken);
                            if let Some(src) = self.cur_src {
                                self.write_slot(src, p);
                            }
                            // The pending link described exactly this
                            // transition; left dangling it would later be
                            // applied to an unrelated XB and corrupt a slot.
                            self.link_from = None;
                            self.cur = Some(p);
                            self.pending_uops = 0;
                            self.after_drain = None;
                            self.stall += self.engine.take_stall();
                            self.xfu.clear();
                            probe.emit(Event::SwitchToDelivery);
                        }
                    }
                }
            }
        }
        probe.emit(Event::Cycle(cycle_kind));
    }

    fn step_probe<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        match self.mode {
            Mode::Build => self.build_cycle(oracle, probe),
            Mode::Delivery => self.delivery_cycle(oracle, probe),
        }
    }
}

impl Frontend for XbcFrontend {
    fn name(&self) -> &str {
        "xbc"
    }

    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics) {
        self.step_probe(oracle, &mut Probe::untraced(metrics));
    }

    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        self.step_probe(oracle, &mut Probe::traced(metrics, sink));
    }

    fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Build => "build",
            Mode::Delivery => "delivery",
        }
    }

    fn state_brief(&self) -> String {
        format!(
            "mode={:?} cur={:?} pending={} stall={} after={:?}",
            self.mode, self.cur, self.pending_uops, self.stall, self.after_drain
        )
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.audit_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::{BranchKind, Inst};
    use xbc_workload::{standard_traces, CondBehavior, ProgramBuilder, Trace};

    fn small() -> XbcConfig {
        XbcConfig { total_uops: 4096, ..XbcConfig::default() }
    }

    /// A hot loop with a monotonic branch: everything should come from the
    /// XBC after one build pass, and the loop branch should get promoted.
    fn loop_trace(n: usize) -> Trace {
        let mut b = ProgramBuilder::new();
        for i in 0..6u64 {
            b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
        }
        b.push_cond(
            Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x100), 1);
        Trace::capture("loop", &p, 0, n)
    }

    #[test]
    fn hot_loop_served_from_xbc() {
        let t = loop_trace(4000);
        let mut fe = XbcFrontend::new(small());
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert!(m.uop_miss_rate() < 0.05, "miss rate {}", m.uop_miss_rate());
        assert!(m.delivery_bandwidth() > 4.0, "bandwidth {}", m.delivery_bandwidth());
    }

    #[test]
    fn promotion_fires_on_monotonic_loop() {
        let t = loop_trace(4000);
        let mut fe = XbcFrontend::new(small());
        let m = fe.run(&t);
        assert!(m.promotions >= 1, "the 100%-taken loop branch must promote");
    }

    #[test]
    fn promotion_off_means_no_promotions() {
        let t = loop_trace(4000);
        let mut fe = XbcFrontend::new(XbcConfig { promotion: PromotionMode::Off, ..small() });
        let m = fe.run(&t);
        assert_eq!(m.promotions, 0);
    }

    #[test]
    fn delivers_whole_trace() {
        let t = standard_traces()[0].capture(30_000);
        let mut fe = XbcFrontend::new(XbcConfig::default());
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert_eq!(m.cycles, m.build_cycles + m.delivery_cycles + m.stall_cycles);
    }

    #[test]
    fn no_redundancy_invariant_on_real_workload() {
        let t = standard_traces()[0].capture(50_000);
        let mut fe = XbcFrontend::new(XbcConfig::default());
        fe.run(&t);
        let (total, distinct) = fe.array().redundancy();
        // Complex-XB split lines may duplicate a few uops; anything beyond
        // a couple of percent means the build algorithm is broken.
        let dup = total - distinct;
        assert!(
            (dup as f64) < 0.05 * total as f64,
            "redundancy too high: {dup} duplicated of {total}"
        );
    }

    #[test]
    fn xbc_beats_tc_miss_rate_at_equal_size() {
        use xbc_frontend::{TcConfig, TraceCacheFrontend};
        let t = standard_traces()[8].capture(120_000); // sysmark-like
        let size = 8192;
        let mut xbc = XbcFrontend::new(XbcConfig { total_uops: size, ..XbcConfig::default() });
        let mut tc = TraceCacheFrontend::new(TcConfig { total_uops: size, ..TcConfig::default() });
        let mx = xbc.run(&t);
        let mt = tc.run(&t);
        assert!(
            mx.uop_miss_rate() < mt.uop_miss_rate(),
            "XBC {} vs TC {}",
            mx.uop_miss_rate(),
            mt.uop_miss_rate()
        );
    }

    #[test]
    fn smaller_xbc_misses_more() {
        let t = standard_traces()[8].capture(60_000);
        let mut big = XbcFrontend::new(XbcConfig { total_uops: 65536, ..XbcConfig::default() });
        let mut small = XbcFrontend::new(XbcConfig { total_uops: 2048, ..XbcConfig::default() });
        let mb = big.run(&t);
        let ms = small.run(&t);
        assert!(ms.uop_miss_rate() > mb.uop_miss_rate());
    }

    #[test]
    fn set_search_disabled_still_correct() {
        let t = standard_traces()[0].capture(30_000);
        let mut fe = XbcFrontend::new(XbcConfig { set_search: false, ..small() });
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert_eq!(m.set_searches, 0);
    }

    #[test]
    fn merge_mode_correct_and_promotes() {
        let t = loop_trace(4000);
        let mut fe = XbcFrontend::new(XbcConfig { promotion: PromotionMode::Merge, ..small() });
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert!(m.promotions >= 1);
        assert!(m.uop_miss_rate() < 0.1, "miss {}", m.uop_miss_rate());
    }

    #[test]
    fn merge_mode_duplicates_bounded_on_real_workload() {
        // Merging copies XB0 into the combined block: duplication rises
        // above the complex-split baseline but must stay moderate.
        let t = standard_traces()[0].capture(60_000);
        let mut fe =
            XbcFrontend::new(XbcConfig { promotion: PromotionMode::Merge, ..XbcConfig::default() });
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        let (stored, distinct) = fe.array().redundancy();
        let dup = (stored - distinct) as f64 / stored.max(1) as f64;
        assert!(dup < 0.25, "merge duplication out of band: {:.1}%", 100.0 * dup);
    }

    /// A two-sided branch whose not-taken arm appears only after warm-up:
    /// the first NT occurrence must heal the pointer through build mode,
    /// and later NT occurrences must recover *within* delivery via the
    /// entry's other pointer (the XBC's §3.5 advantage).
    #[test]
    fn cond_mispredict_recovers_in_delivery() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x100), 1, 2));
        b.push_cond(
            Inst::new(Addr::new(0x101), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
            CondBehavior::Bernoulli { p_taken: 0.9 },
        );
        b.push(Inst::plain(Addr::new(0x103), 1, 2));
        b.push(Inst::new(Addr::new(0x104), 2, 1, BranchKind::UncondDirect, Some(Addr::new(0x100))));
        let p = b.build(Addr::new(0x100), 1);
        let t = Trace::capture("two-sided", &p, 3, 20_000);
        let mut fe = XbcFrontend::new(small());
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        // ~10% of ~6700 branch executions mispredict, but almost none of
        // them should force a rebuild once both pointers exist.
        assert!(m.cond_mispredicts > 100, "mispredicts {}", m.cond_mispredicts);
        assert!(
            m.delivery_to_build < m.cond_mispredicts / 5,
            "only a fraction of mispredicts may leave delivery: {} vs {}",
            m.delivery_to_build,
            m.cond_mispredicts
        );
        assert!(m.uop_miss_rate() < 0.05, "miss {}", m.uop_miss_rate());
    }

    /// Two 16-uop XBs cannot fetch in one cycle of a 4-bank array: the
    /// second defers, showing up as bank-conflict uops, and everything
    /// still delivers correctly.
    #[test]
    fn bank_conflicts_defer_but_stay_correct() {
        let mut b = ProgramBuilder::new();
        // Two max-length straight-line blocks in a tight loop.
        for i in 0..4u64 {
            b.push(Inst::plain(Addr::new(0x100 + i), 1, 4));
        }
        b.push_cond(
            Inst::new(Addr::new(0x104), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x200))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        for i in 0..4u64 {
            b.push(Inst::plain(Addr::new(0x200 + i), 1, 4));
        }
        b.push_cond(
            Inst::new(Addr::new(0x204), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x206), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x100), 1);
        let t = Trace::capture("wide", &p, 0, 4_000);
        let mut fe = XbcFrontend::new(small());
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert!(m.uop_miss_rate() < 0.05);
        // Each loop body is 17+16 uops of XBs; conflicts are expected but
        // bounded — and bandwidth should still approach the renamer width.
        assert!(m.delivery_bandwidth() > 5.0, "bw {}", m.delivery_bandwidth());
    }

    #[test]
    fn xbs_per_cycle_one_reduces_bandwidth() {
        let t = standard_traces()[0].capture(60_000);
        let mut one = XbcFrontend::new(XbcConfig { xbs_per_cycle: 1, ..XbcConfig::default() });
        let mut two = XbcFrontend::new(XbcConfig::default());
        let m1 = one.run(&t);
        let m2 = two.run(&t);
        assert!(
            m1.delivery_bandwidth() < m2.delivery_bandwidth(),
            "1 XB/cycle {} vs 2 XBs/cycle {}",
            m1.delivery_bandwidth(),
            m2.delivery_bandwidth()
        );
    }

    #[test]
    fn all_promotion_modes_deliver_identical_uop_totals() {
        let t = standard_traces()[16].capture(40_000);
        for mode in [PromotionMode::Off, PromotionMode::Chain, PromotionMode::Merge] {
            let mut fe = XbcFrontend::new(XbcConfig { promotion: mode, ..XbcConfig::default() });
            let m = fe.run(&t);
            assert_eq!(m.total_uops(), t.uop_count(), "mode {mode}");
        }
    }
}
