//! Minimal argument parsing shared by the figure-regeneration binaries.
//!
//! All harness binaries accept:
//!
//! * `--inst N` — dynamic instructions per trace (default 1,000,000),
//! * `--traces a,b,c` — restrict to named traces (default: all 21),
//! * `--json PATH` — also dump rows as JSON,
//! * `--threads N` — worker threads (default: all cores; work is
//!   scheduled per (trace × frontend) cell, so threads beyond the trace
//!   count still help),
//! * `--bench-json PATH` — dump scheduler performance accounting
//!   (wall time, capture/sim split, worker utilization) as JSON,
//! * `--cache-dir PATH` — xbc-store root (default `$XBC_CACHE_DIR`,
//!   falling back to `target/xbc-cache`),
//! * `--no-cache` — disable the trace/result store entirely,
//! * `--check` — assert accounting identities and structural invariants
//!   every simulated cycle,
//! * `--trace-events PATH` — write the cycle-level `xbc-events-v1`
//!   JSONL event stream of every simulated cell to PATH.

use std::sync::Arc;
use xbc_store::Store;
use xbc_workload::{standard_traces, TraceSpec};

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Instructions per trace.
    pub insts: usize,
    /// Selected traces.
    pub traces: Vec<TraceSpec>,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional sweep-bench JSON output path (`--bench-json`).
    pub bench_json: Option<String>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// xbc-store root directory; `None` means caching is disabled.
    pub cache_dir: Option<String>,
    /// Verify accounting identities and structural invariants while
    /// simulating (`--check`).
    pub check: bool,
    /// Write the cycle-level `xbc-events-v1` JSONL event stream here
    /// (`--trace-events`). Tracing bypasses the result cache so the
    /// stream covers every cell.
    pub trace_events: Option<String>,
    /// Positional (non-flag) arguments, for harness-specific modes.
    pub positional: Vec<String>,
}

impl HarnessArgs {
    /// Parses `args` (exclusive of the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed flags or unknown
    /// trace names.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let default_cache =
            std::env::var("XBC_CACHE_DIR").unwrap_or_else(|_| "target/xbc-cache".to_owned());
        let mut out = HarnessArgs {
            insts: 1_000_000,
            traces: standard_traces(),
            json: None,
            bench_json: None,
            threads: 0,
            cache_dir: Some(default_cache),
            check: false,
            trace_events: None,
            positional: Vec::new(),
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--inst" => {
                    let v = it.next().ok_or("--inst needs a value")?;
                    out.insts = v.parse().map_err(|_| format!("bad --inst value: {v}"))?;
                    if out.insts == 0 {
                        return Err("--inst must be positive".into());
                    }
                }
                "--traces" => {
                    let v = it.next().ok_or("--traces needs a comma-separated list")?;
                    let all = standard_traces();
                    let mut picked = Vec::new();
                    for name in v.split(',') {
                        let t = all
                            .iter()
                            .find(|t| t.name == name)
                            .ok_or_else(|| format!("unknown trace: {name}"))?;
                        picked.push(t.clone());
                    }
                    out.traces = picked;
                }
                "--json" => {
                    out.json = Some(it.next().ok_or("--json needs a path")?);
                }
                "--bench-json" => {
                    out.bench_json = Some(it.next().ok_or("--bench-json needs a path")?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
                }
                "--cache-dir" => {
                    out.cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?);
                }
                "--no-cache" => {
                    out.cache_dir = None;
                }
                "--check" => {
                    out.check = true;
                }
                "--trace-events" => {
                    out.trace_events = Some(it.next().ok_or("--trace-events needs a path")?);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag: {other}"));
                }
                other => out.positional.push(other.to_owned()),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, exiting with usage on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--inst N] [--traces a,b,c] [--json PATH] [--bench-json PATH] \
                     [--threads N] [--cache-dir PATH | --no-cache] [--check] \
                     [--trace-events PATH] [mode...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Opens the configured xbc-store, or `None` when `--no-cache` was
    /// given. A store that fails to open (e.g. unwritable directory) is
    /// logged and treated as disabled — caching is an accelerator, never
    /// a hard requirement.
    pub fn open_store(&self) -> Option<Arc<Store>> {
        let dir = self.cache_dir.as_ref()?;
        match Store::open(dir) {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("[xbc-store] cannot open cache dir {dir}: {e}; running uncached");
                None
            }
        }
    }

    /// Builds a sweep over this invocation's traces/insts/threads, wired
    /// to the configured store (if any).
    pub fn sweep(&self, frontends: Vec<crate::FrontendSpec>) -> crate::Sweep {
        let mut sweep = crate::Sweep::new(self.traces.clone(), frontends, self.insts);
        sweep.threads = self.threads;
        sweep.check = self.check;
        sweep.trace_events = self.trace_events.clone();
        if let Some(store) = self.open_store() {
            sweep = sweep.with_store(store);
        }
        sweep
    }

    /// Builds and runs the sweep in one step, honoring `--bench-json`:
    /// the scheduler's performance accounting is written there when the
    /// flag was given. This is what the figure binaries call.
    pub fn run_sweep(&self, frontends: Vec<crate::FrontendSpec>) -> Vec<crate::Row> {
        let (rows, bench) = self.sweep(frontends).run_with_bench();
        self.maybe_dump_bench(&bench);
        rows
    }

    /// Writes rows to the `--json` path, if one was given.
    pub fn maybe_dump_json(&self, rows: &[crate::Row]) {
        if let Some(path) = &self.json {
            match std::fs::write(path, crate::to_json(rows)) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }

    /// Writes the sweep bench to the `--bench-json` path, if one was
    /// given.
    pub fn maybe_dump_bench(&self, bench: &crate::SweepBench) {
        if let Some(path) = &self.bench_json {
            match std::fs::write(path, bench.to_json()) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.insts, 1_000_000);
        assert_eq!(a.traces.len(), 21);
        assert!(a.json.is_none());
        assert!(a.bench_json.is_none());
        assert!(!a.check);
        assert!(a.positional.is_empty());
        // Caching defaults on ($XBC_CACHE_DIR or target/xbc-cache).
        assert!(a.cache_dir.is_some());
    }

    #[test]
    fn cache_flags() {
        let a = parse(&["--cache-dir", "/tmp/xbc"]).unwrap();
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/xbc"));
        let b = parse(&["--no-cache"]).unwrap();
        assert!(b.cache_dir.is_none());
        assert!(b.open_store().is_none());
        // Last flag wins, in both directions.
        let c = parse(&["--no-cache", "--cache-dir", "/tmp/xbc"]).unwrap();
        assert_eq!(c.cache_dir.as_deref(), Some("/tmp/xbc"));
        let d = parse(&["--cache-dir", "/tmp/xbc", "--no-cache"]).unwrap();
        assert!(d.cache_dir.is_none());
    }

    #[test]
    fn flags() {
        let a = parse(&[
            "--inst",
            "5000",
            "--traces",
            "spec.gcc,games.quake",
            "--threads",
            "2",
            "--bench-json",
            "bench.json",
            "--check",
            "--trace-events",
            "events.jsonl",
            "promotion",
        ])
        .unwrap();
        assert_eq!(a.insts, 5000);
        assert_eq!(a.traces.len(), 2);
        assert_eq!(a.traces[0].name, "spec.gcc");
        assert_eq!(a.threads, 2);
        assert_eq!(a.bench_json.as_deref(), Some("bench.json"));
        assert!(a.check);
        assert_eq!(a.trace_events.as_deref(), Some("events.jsonl"));
        assert_eq!(a.positional, vec!["promotion"]);
    }

    #[test]
    fn bad_trace_name() {
        assert!(parse(&["--traces", "nope"]).is_err());
    }

    #[test]
    fn unknown_flag() {
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn zero_inst_rejected() {
        assert!(parse(&["--inst", "0"]).is_err());
    }
}
