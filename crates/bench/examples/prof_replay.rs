//! Replays the bench trace through the XBC frontend repeatedly — a
//! minimal wall-clock harness for host-side profiling of the delivery
//! hot path (`perf record target/release/examples/prof_replay 100`).

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let trace = xbc_bench::bench_trace(50_000);
    let mut total = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        total += fe.run(&trace).total_uops();
    }
    let wall = t0.elapsed();
    let per = wall.as_secs_f64() / iters as f64;
    println!(
        "{iters} replays, {total} uops, {:.1} ms total, {:.3} ms/replay, {:.1} Muops/s",
        wall.as_secs_f64() * 1e3,
        per * 1e3,
        total as f64 / wall.as_secs_f64() / 1e6
    );
}
