//! Workload generation parameters.
//!
//! The paper evaluates on 21 proprietary traces (SPECint95, SYSmark32,
//! Games). We cannot replay those, so [`WorkloadProfile`] captures the
//! workload properties its results actually depend on — block-length
//! distributions, branch mix and bias structure, control-flow fan-in
//! (which creates trace-cache redundancy), and static code footprint —
//! and the generator synthesizes programs with those properties
//! (see DESIGN.md §3 for the substitution argument).

/// Relative frequencies of basic-block terminator kinds.
///
/// Values are weights (not required to sum to 1); the generator normalizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TerminatorMix {
    /// Conditional direct branches.
    pub cond: f64,
    /// Unconditional direct jumps.
    pub jmp: f64,
    /// Direct calls.
    pub call: f64,
    /// Returns.
    pub ret: f64,
    /// Indirect jumps (switch statements, computed gotos).
    pub ijmp: f64,
    /// Indirect calls (virtual dispatch, function pointers).
    pub icall: f64,
}

impl TerminatorMix {
    /// Sum of all weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or the total is zero.
    pub fn total(&self) -> f64 {
        let parts = [self.cond, self.jmp, self.call, self.ret, self.ijmp, self.icall];
        assert!(parts.iter().all(|w| *w >= 0.0), "terminator weights must be non-negative");
        let t: f64 = parts.iter().sum();
        assert!(t > 0.0, "terminator mix cannot be all-zero");
        t
    }
}

impl Default for TerminatorMix {
    /// Integer-code-like mix: conditional branches dominate, with the
    /// call/return traffic of typical IA32 integer workloads.
    fn default() -> Self {
        TerminatorMix { cond: 0.70, jmp: 0.08, call: 0.10, ret: 0.08, ijmp: 0.02, icall: 0.02 }
    }
}

/// Full parameter set for synthesizing one program.
///
/// # Examples
///
/// ```
/// use xbc_workload::WorkloadProfile;
///
/// let p = WorkloadProfile::default();
/// p.validate(); // panics on inconsistent parameters
/// assert!(p.functions > 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Number of functions in the program.
    pub functions: usize,
    /// Mean basic blocks per function (geometric-ish around this mean).
    pub blocks_per_fn_mean: f64,
    /// Geometric parameter for instructions per block: block length is
    /// `1 + Geometric(p)`; smaller `p` means longer blocks.
    pub insts_per_block_p: f64,
    /// Weights for an instruction decoding into 1, 2, 3 or 4 uops.
    pub uops_per_inst_weights: [f64; 4],
    /// Terminator mix.
    pub terminators: TerminatorMix,
    /// Fraction of conditional branches that are ≥ 99% taken-biased
    /// (promotion candidates; paper §3.8 relies on these being common).
    pub biased_taken_frac: f64,
    /// Fraction of conditional branches ≥ 99% not-taken-biased.
    pub biased_not_taken_frac: f64,
    /// Fraction of conditional branches that act as loop back-edges with
    /// deterministic trip counts.
    pub loop_frac: f64,
    /// Mean loop trip count (geometric).
    pub loop_trip_mean: f64,
    /// Probability that a conditional/unconditional target is redirected to
    /// a designated *join* block of the function instead of a fresh random
    /// block. Higher fan-in ⇒ more shared suffixes ⇒ more trace-cache
    /// redundancy (paper §2.3) for the XBC to eliminate.
    pub join_bias: f64,
    /// Fraction of functions that receive the bulk of call traffic.
    pub hot_fraction: f64,
    /// Probability a call targets the hot subset.
    pub hot_call_prob: f64,
    /// Maximum number of distinct targets of an indirect jump/call.
    pub indirect_targets_max: usize,
    /// How far back (in blocks) a loop back-edge may reach. Larger spans
    /// mean bigger loop bodies, spreading dynamic execution over more code.
    pub loop_span: usize,
    /// Probability that a *moderately* biased conditional branch points
    /// backward (forming a stochastic loop with exit probability ≥ 0.1).
    pub moderate_backward_prob: f64,
    /// Probability an indirect jump/call reuses its previous target
    /// instead of resampling. Real dispatch is bursty (the same event
    /// handler runs many times in a row), which is what makes 1990s-class
    /// indirect predictors work at all.
    pub indirect_stickiness: f64,
    /// Mean instructions between asynchronous kernel interrupts (`None`
    /// disables them). The paper's traces "record both user and kernel
    /// activities" (§4); interrupts divert execution into shared handler
    /// functions, polluting frontend structures at unpredictable points.
    pub interrupt_interval: Option<usize>,
}

impl WorkloadProfile {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any parameter is out of range.
    pub fn validate(&self) {
        assert!(self.functions > 0, "need at least one function");
        assert!(self.blocks_per_fn_mean >= 2.0, "functions need at least ~2 blocks on average");
        assert!(
            self.insts_per_block_p > 0.0 && self.insts_per_block_p < 1.0,
            "insts_per_block_p must be a probability in (0,1)"
        );
        assert!(
            self.uops_per_inst_weights.iter().all(|w| *w >= 0.0)
                && self.uops_per_inst_weights.iter().sum::<f64>() > 0.0,
            "uop weights must be non-negative and not all zero"
        );
        self.terminators.total();
        for (name, v) in [
            ("biased_taken_frac", self.biased_taken_frac),
            ("biased_not_taken_frac", self.biased_not_taken_frac),
            ("loop_frac", self.loop_frac),
            ("join_bias", self.join_bias),
            ("hot_fraction", self.hot_fraction),
            ("hot_call_prob", self.hot_call_prob),
            ("moderate_backward_prob", self.moderate_backward_prob),
            ("indirect_stickiness", self.indirect_stickiness),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        assert!(
            self.biased_taken_frac + self.biased_not_taken_frac + self.loop_frac <= 1.0 + 1e-9,
            "bias fractions must not exceed 1"
        );
        assert!(self.loop_trip_mean >= 1.0, "loops run at least once");
        assert!(self.indirect_targets_max >= 1, "indirect branches need a target");
        assert!(self.loop_span >= 1, "loop back-edges need at least one block of span");
        if let Some(i) = self.interrupt_interval {
            assert!(i >= 100, "interrupts more often than every 100 insts are unrealistic");
        }
    }

    /// Expected uops per instruction under the configured weights.
    pub fn mean_uops_per_inst(&self) -> f64 {
        let total: f64 = self.uops_per_inst_weights.iter().sum();
        self.uops_per_inst_weights.iter().enumerate().map(|(i, w)| (i + 1) as f64 * w).sum::<f64>()
            / total
    }

    /// Expected instructions per basic block (`1 + (1-p)/p` for the
    /// geometric tail).
    pub fn mean_insts_per_block(&self) -> f64 {
        1.0 + (1.0 - self.insts_per_block_p) / self.insts_per_block_p
    }

    /// Rough static footprint estimate in uops.
    pub fn approx_static_uops(&self) -> f64 {
        self.functions as f64
            * self.blocks_per_fn_mean
            * self.mean_insts_per_block()
            * self.mean_uops_per_inst()
    }
}

impl Default for WorkloadProfile {
    /// Tuned so dynamic basic blocks average ≈ 7.7 uops and extended blocks
    /// ≈ 8.0 uops with a 16-uop quota, matching paper Figure 1.
    fn default() -> Self {
        WorkloadProfile {
            functions: 96,
            blocks_per_fn_mean: 24.0,
            insts_per_block_p: 0.16,
            uops_per_inst_weights: [0.55, 0.30, 0.10, 0.05],
            terminators: TerminatorMix::default(),
            biased_taken_frac: 0.22,
            biased_not_taken_frac: 0.18,
            loop_frac: 0.05,
            loop_trip_mean: 6.0,
            join_bias: 0.35,
            hot_fraction: 0.25,
            hot_call_prob: 0.85,
            indirect_targets_max: 5,
            loop_span: 12,
            moderate_backward_prob: 0.10,
            indirect_stickiness: 0.85,
            interrupt_interval: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WorkloadProfile::default().validate();
    }

    #[test]
    fn mean_uops_matches_weights() {
        let p =
            WorkloadProfile { uops_per_inst_weights: [1.0, 0.0, 0.0, 1.0], ..Default::default() };
        assert!((p.mean_uops_per_inst() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_block_length_formula() {
        let p = WorkloadProfile { insts_per_block_p: 0.5, ..Default::default() };
        assert!((p.mean_insts_per_block() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_targets_paper_block_sizes() {
        let p = WorkloadProfile::default();
        let uops_per_block = p.mean_insts_per_block() * p.mean_uops_per_inst();
        // Paper Figure 1: average *dynamic* basic block is 7.7 uops. The
        // static product sits deliberately higher (≈ 10): the 16-uop quota
        // saturation and loop-weighted dynamic mix pull the measured mean
        // down to the paper's value (verified in stats::tests).
        assert!((8.0..12.5).contains(&uops_per_block), "got {uops_per_block}");
    }

    #[test]
    fn footprint_scales_with_functions() {
        let mut a = WorkloadProfile::default();
        let base = a.approx_static_uops();
        a.functions *= 2;
        assert!((a.approx_static_uops() - 2.0 * base).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "insts_per_block_p")]
    fn invalid_geometric_p_rejected() {
        let p = WorkloadProfile { insts_per_block_p: 1.5, ..Default::default() };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn bias_fractions_bounded() {
        let p = WorkloadProfile {
            biased_taken_frac: 0.7,
            biased_not_taken_frac: 0.7,
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_terminators_rejected() {
        let mix = TerminatorMix { cond: 0.0, jmp: 0.0, call: 0.0, ret: 0.0, ijmp: 0.0, icall: 0.0 };
        mix.total();
    }
}
