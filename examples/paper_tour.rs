//! A guided tour of the paper's §3 mechanisms on tiny handcrafted
//! programs: watch the build algorithm's three cases (contained /
//! extended / complex), reverse-order storage, and branch promotion do
//! their thing, one at a time.
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use xbc::{install, BankMask, InstallKind, XbcArray, XbcConfig, Xfu};
use xbc_frontend::FillSink;
use xbc_isa::{Addr, BranchKind, Inst};
use xbc_workload::DynInst;

fn dyn_inst(ip: u64, uops: u8, branch: BranchKind, target: Option<u64>) -> DynInst {
    let inst = Inst::new(Addr::new(ip), 1, uops, branch, target.map(Addr::new));
    DynInst { inst, taken: branch != BranchKind::None, next_ip: Addr::new(ip + 1) }
}

fn main() {
    let cfg = XbcConfig { total_uops: 256, ..XbcConfig::default() };
    let mut array = XbcArray::new(&cfg);
    let mut xfu = Xfu::new(cfg.max_xb_uops);

    println!("== §3.3 case ... fresh insert ==");
    // Path through B C D ending on a conditional at D.
    for ip in [0x200u64, 0x201, 0x202] {
        xfu.observe(&dyn_inst(ip, 3, BranchKind::None, None));
    }
    xfu.observe(&dyn_inst(0x203, 1, BranchKind::CondDirect, Some(0x100)));
    let bcd = xfu.done.remove(0);
    let (ptr, kind) = install(&bcd, &mut array, BankMask::EMPTY);
    println!("built BCD (10 uops): {kind:?}, mask {}, offset {}", ptr.mask, ptr.offset);
    assert_eq!(kind, InstallKind::Fresh);

    println!();
    println!("== §3.3 case 1: contained (entering at C) ==");
    for ip in [0x201u64, 0x202] {
        xfu.observe(&dyn_inst(ip, 3, BranchKind::None, None));
    }
    xfu.observe(&dyn_inst(0x203, 1, BranchKind::CondDirect, Some(0x100)));
    let cd = xfu.done.remove(0);
    let (p2, kind) = install(&cd, &mut array, BankMask::EMPTY);
    println!("built CD  (7 uops): {kind:?} — no new storage, entry offset {}", p2.offset);
    assert_eq!(kind, InstallKind::Contained);
    let (stored, distinct) = array.redundancy();
    println!("array: {stored} stored / {distinct} distinct uops (no duplication)");

    println!();
    println!("== §3.3 case 2: extension (discovering A in front) ==");
    xfu.observe(&dyn_inst(0x1ff, 2, BranchKind::None, None)); // A
    for ip in [0x200u64, 0x201, 0x202] {
        xfu.observe(&dyn_inst(ip, 3, BranchKind::None, None));
    }
    xfu.observe(&dyn_inst(0x203, 1, BranchKind::CondDirect, Some(0x100)));
    let abcd = xfu.done.remove(0);
    let (p3, kind) = install(&abcd, &mut array, BankMask::EMPTY);
    println!("built ABCD (12 uops): {kind:?} — prepended in place thanks to reverse order");
    assert_eq!(kind, InstallKind::Extended);
    println!("same identity ({}), wider mask {}, offset {}", p3.xb_ip, p3.mask, p3.offset);

    println!();
    println!("== §3.3 case 3: complex XB (same suffix, different prefix) ==");
    xfu.observe(&dyn_inst(0x300, 2, BranchKind::None, None)); // X, jumps into C D
    xfu.observe(&dyn_inst(0x301, 1, BranchKind::UncondDirect, Some(0x201)));
    for ip in [0x201u64, 0x202] {
        xfu.observe(&dyn_inst(ip, 3, BranchKind::None, None));
    }
    xfu.observe(&dyn_inst(0x203, 1, BranchKind::CondDirect, Some(0x100)));
    let xcd = xfu.done.remove(0);
    let (p4, kind) = install(&xcd, &mut array, BankMask::EMPTY);
    println!("built X→CD (10 uops): {kind:?} — alternate prefix sharing the suffix lines");
    assert_eq!(kind, InstallKind::Complex);
    println!("pointer mask {} (suffix banks + new prefix bank)", p4.mask);
    let (stored, distinct) = array.redundancy();
    println!(
        "array: {stored} stored / {distinct} distinct ({} split-line uops duplicated — the 'nearly' in nearly-redundancy-free)",
        stored - distinct
    );

    println!();
    println!("== census ==");
    let pop = array.population();
    println!(
        "{} XBs in {} lines; {} complex; length mean {:.1} uops",
        pop.xb_count,
        pop.lines,
        pop.complex_count,
        pop.length_hist.mean()
    );
    println!();
    println!("(see `cargo run --example custom_program` for promotion in action,");
    println!(" and `ablation -- promotion` for the chain/merge/off comparison)");
}
