#!/usr/bin/env bash
# Regenerates every figure, table and ablation recorded in EXPERIMENTS.md.
# Usage: scripts/regen.sh [INSTS] [THREADS] (defaults: 1000000, all cores)
#
# THREADS caps the sweep worker pool (0 = one worker per core). Work is
# scheduled per (trace x frontend) cell, so threads beyond the trace
# count still help — a sweep of N configs over M traces keeps up to
# min(THREADS, N*M) workers busy. The summary step also writes
# results/BENCH_sweep.json (wall time, capture/sim split, per-worker
# utilization) so sweep throughput is tracked run over run.
#
# Captured traces and sweep rows are cached in XBC_CACHE_DIR (default
# target/xbc-cache), so a re-run with the same INSTS replays cached
# results instead of re-simulating. Delete the cache dir (or pass a
# fresh one) to force full regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-1000000}"
THREADS="${2:-0}"
ABL_INSTS=$((INSTS / 3))
if [ "$ABL_INSTS" -lt 1 ]; then
  ABL_INSTS=1
fi
CACHE_DIR="${XBC_CACHE_DIR:-target/xbc-cache}"
mkdir -p results
cargo build --release -p xbc-bench

B=target/release
COMMON=(--threads "$THREADS" --cache-dir "$CACHE_DIR")

# step NAME CMD... — runs CMD, tees to results/NAME.txt, prints wall-clock.
step() {
  local name="$1"
  shift
  local t0
  t0=$(date +%s)
  "$@" | tee "results/$name.txt"
  echo "[regen] $name: $(($(date +%s) - t0))s"
}

step fig1    "$B/fig1"    --inst "$INSTS" "${COMMON[@]}"
step fig8    "$B/fig8"    --inst "$INSTS" "${COMMON[@]}" --json results/fig8.json
step fig9    "$B/fig9"    --inst "$INSTS" "${COMMON[@]}" --json results/fig9.json
step fig10   "$B/fig10"   --inst "$INSTS" "${COMMON[@]}" --json results/fig10.json
step summary "$B/summary" --inst "$INSTS" "${COMMON[@]}" --bench-json results/BENCH_sweep.json
for m in promotion banks placement setsearch xbtb xbs xbq predictor tcpath baselines; do
  step "ablation_$m" "$B/ablation" "$m" --inst "$ABL_INSTS" "${COMMON[@]}"
done
echo "all results regenerated under results/ (cache: $CACHE_DIR)"
