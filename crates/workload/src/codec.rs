//! Compact binary trace encoding (the `XBT1` format).
//!
//! The paper's methodology captures each committed instruction stream
//! *once* and replays it through every frontend. The on-disk format this
//! module implements is what makes "once" cheap enough to be the default:
//!
//! * **varint deltas** — instruction pointers are stored as zigzag
//!   varints relative to the previous instruction's `next_ip`, which is a
//!   0-byte field for a connected stream; branch targets are deltas from
//!   the instruction's own IP;
//! * **enum packing** — branch kind, taken bit and presence flags share
//!   one byte; encoded length and uop count share another;
//! * **CRC32 trailer** — a hand-rolled IEEE CRC32 over everything after
//!   the magic, so truncation and bit-flips are detected on read;
//! * **no serde** — the codec is ~300 lines of std-only Rust, so the
//!   workspace builds offline.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"XBT1"
//! version u32                  (= FORMAT_VERSION)
//! name    u16 length + UTF-8 bytes
//! count   u64                  dynamic instruction count
//! stats   5 x u64              ExecStats of the capture
//! records count x record       (see Record encoding below)
//! crc     u32                  CRC32 of version..records
//! ```
//!
//! Record encoding: `flags` byte (bits 0–2 branch kind, 3 taken, 4
//! has-target, 5 next-is-sequential, 6 ip-is-expected), `shape` byte
//! (bits 0–3 length, 4–5 uops−1), then up to three zigzag varints: the
//! IP delta (only when not the expected continuation), the target delta
//! (only for direct branches) and the next-IP delta (only for taken
//! transfers).
//!
//! [`TraceReader`] decodes *streaming*: one record at a time, O(1)
//! memory, so multi-million-instruction traces can be validated or
//! replayed without materializing a `Vec<DynInst>`.

use crate::exec::{DynInst, ExecStats};
use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use xbc_isa::{Addr, BranchKind, Inst};

/// Version stamp of the `XBT1` container. Bump on any layout change so
/// stale cache entries are rejected (and regenerated) instead of
/// misdecoded.
pub const FORMAT_VERSION: u32 = 1;

/// File magic of encoded traces.
pub const MAGIC: [u8; 4] = *b"XBT1";

const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_HAS_TARGET: u8 = 1 << 4;
const FLAG_NEXT_SEQ: u8 = 1 << 5;
const FLAG_IP_EXPECTED: u8 = 1 << 6;

/// Errors produced by the trace codec.
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid or corrupted data (bad magic, CRC mismatch,
    /// truncation, out-of-range field). The string says which.
    Corrupt(String),
    /// The file is a valid container of an unsupported format version.
    Version(u32),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::Version(v) => {
                write!(f, "unsupported trace format version {v} (expected {FORMAT_VERSION})")
            }
        }
    }
}

impl fmt::Debug for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        // Short reads surface as UnexpectedEof: that is truncation, which
        // callers treat as corruption, not as an environment error.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Corrupt("truncated file".into())
        } else {
            TraceError::Io(e)
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Feeds `bytes` into a running CRC32 (start from `0`, use the returned
/// value as the next call's `crc`).
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Applies a 32×32 GF(2) matrix (columns as `u32` bit-vectors) to a
/// 32-bit vector.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Squares a GF(2) matrix: `square = mat × mat`.
fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combines two independently computed CRC32s:
/// `crc32_combine(crc32(a), crc32(b), b.len()) == crc32(a ++ b)`.
///
/// This is what lets [`StreamEncoder`] keep a records-only running CRC
/// while the header (whose `ExecStats` are unknown until capture ends)
/// is CRC'd separately and patched in at finalize — no second pass over
/// gigabytes of records. The algorithm is the standard GF(2) matrix
/// trick: appending `len2` zero bytes to `a` multiplies its CRC state by
/// the zero-byte transition matrix `len2` times, done in O(log len2)
/// matrix squarings.
pub fn crc32_combine(crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32]; // zero-byte operator^(2^(2k))
    let mut odd = [0u32; 32]; // zero-byte operator^(2^(2k+1))

    // One zero *bit*: CRC shift with the reflected polynomial.
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for slot in odd.iter_mut().skip(1) {
        *slot = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd); // two zero bits
    gf2_matrix_square(&mut odd, &even); // four zero bits

    // Walk the bits of len2, squaring up to the operator for 8·2^k zero
    // bits (one zero byte doubled each round) and applying it where the
    // corresponding bit of len2 is set.
    let mut crc = crc1;
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc = gf2_matrix_times(&even, crc);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc = gf2_matrix_times(&odd, crc);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc ^ crc2
}

// ---------------------------------------------------------------------------
// Varint + zigzag primitives.

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

// ---------------------------------------------------------------------------
// Encoder.

/// Writer half of the codec: call [`Encoder::record`] once per dynamic
/// instruction, then [`Encoder::finish`] to emit the CRC trailer.
pub struct Encoder<W: Write> {
    out: W,
    buf: Vec<u8>,
    crc: u32,
    expected_ip: Addr,
    remaining: u64,
}

impl<W: Write> Encoder<W> {
    /// Writes the header for a trace of exactly `count` instructions.
    pub fn new(mut out: W, name: &str, count: u64, stats: ExecStats) -> Result<Self, TraceError> {
        out.write_all(&MAGIC)?;
        let mut buf = Vec::with_capacity(64 + name.len());
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let name_len = u16::try_from(name.len())
            .map_err(|_| TraceError::Corrupt("trace name longer than 64 KiB".into()))?;
        buf.extend_from_slice(&name_len.to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&count.to_le_bytes());
        for v in
            [stats.insts, stats.uops, stats.elided_calls, stats.wrapped_returns, stats.interrupts]
        {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&buf)?;
        let crc = crc32_update(0, &buf);
        buf.clear();
        Ok(Encoder { out, buf, crc, expected_ip: Addr::NULL, remaining: count })
    }

    /// Appends one dynamic instruction.
    ///
    /// # Panics
    ///
    /// Panics if called more than `count` times.
    pub fn record(&mut self, d: &DynInst) -> Result<(), TraceError> {
        assert!(self.remaining > 0, "encoder received more records than declared");
        self.remaining -= 1;
        self.expected_ip = encode_record(&mut self.buf, self.expected_ip, d);
        self.crc = crc32_update(self.crc, &self.buf);
        self.out.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Writes the CRC trailer and flushes.
    ///
    /// # Panics
    ///
    /// Panics if fewer records were written than declared in the header.
    pub fn finish(mut self) -> Result<(), TraceError> {
        assert_eq!(self.remaining, 0, "encoder finished before all declared records");
        self.out.write_all(&self.crc.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }
}

/// Encodes one record into `buf` (appending), given the stateful
/// expected continuation IP; returns the next expected IP (`d.next_ip`).
/// Shared by [`Encoder`] and [`StreamEncoder`] so the two paths cannot
/// drift byte-wise.
fn encode_record(buf: &mut Vec<u8>, expected_ip: Addr, d: &DynInst) -> Addr {
    let ip = d.inst.ip;
    let mut flags = branch_kind_code(d.inst.branch);
    if d.taken {
        flags |= FLAG_TAKEN;
    }
    if d.inst.target.is_some() {
        flags |= FLAG_HAS_TARGET;
    }
    let next_seq = d.next_ip == d.inst.next_seq();
    if next_seq {
        flags |= FLAG_NEXT_SEQ;
    }
    let ip_expected = ip == expected_ip;
    if ip_expected {
        flags |= FLAG_IP_EXPECTED;
    }
    buf.push(flags);
    debug_assert!((1..=15).contains(&d.inst.len) && (1..=4).contains(&d.inst.uops));
    buf.push(d.inst.len | ((d.inst.uops - 1) << 4));
    if !ip_expected {
        let delta = ip.raw().wrapping_sub(expected_ip.raw()) as i64;
        write_varint(buf, zigzag(delta));
    }
    if let Some(t) = d.inst.target {
        write_varint(buf, zigzag(t.raw().wrapping_sub(ip.raw()) as i64));
    }
    if !next_seq {
        write_varint(buf, zigzag(d.next_ip.raw().wrapping_sub(ip.raw()) as i64));
    }
    d.next_ip
}

// ---------------------------------------------------------------------------
// Streaming encoder.

/// Streaming writer half of the codec, for captures whose [`ExecStats`]
/// are not known until the last instruction has executed.
///
/// [`Encoder`] requires the stats up front because they sit in the
/// header, *before* the records — fine when the whole trace is resident,
/// wrong for a chunked capture that learns the stats only at the end.
/// `StreamEncoder` writes the header with zeroed stats, streams records
/// with a records-only running CRC, then [`StreamEncoder::finish`] seeks
/// back, patches the real stats in, and emits a trailer computed with
/// [`crc32_combine`] — so the bytes on disk are identical to what
/// [`Encoder`] would have produced, without buffering records or making
/// a second pass over them.
pub struct StreamEncoder<W: Write + Seek> {
    out: W,
    buf: Vec<u8>,
    /// CRC of the header bytes before the stats field (version..count).
    crc_prefix: u32,
    /// Running CRC over record bytes only, seeded from 0.
    crc_records: u32,
    /// Total record bytes written, for [`crc32_combine`].
    records_len: u64,
    /// Absolute file offset of the 40-byte stats field.
    stats_pos: u64,
    expected_ip: Addr,
    remaining: u64,
}

impl<W: Write + Seek> StreamEncoder<W> {
    /// Writes the header for a trace of exactly `count` instructions,
    /// with a zeroed stats field to be patched by
    /// [`StreamEncoder::finish`].
    pub fn new(mut out: W, name: &str, count: u64) -> Result<Self, TraceError> {
        out.write_all(&MAGIC)?;
        let mut buf = Vec::with_capacity(64 + name.len());
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let name_len = u16::try_from(name.len())
            .map_err(|_| TraceError::Corrupt("trace name longer than 64 KiB".into()))?;
        buf.extend_from_slice(&name_len.to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&count.to_le_bytes());
        let crc_prefix = crc32_update(0, &buf);
        let stats_pos = (MAGIC.len() + buf.len()) as u64;
        buf.extend_from_slice(&[0u8; 40]); // stats placeholder
        out.write_all(&buf)?;
        buf.clear();
        Ok(StreamEncoder {
            out,
            buf,
            crc_prefix,
            crc_records: 0,
            records_len: 0,
            stats_pos,
            expected_ip: Addr::NULL,
            remaining: count,
        })
    }

    /// Appends one dynamic instruction.
    ///
    /// # Panics
    ///
    /// Panics if called more than `count` times.
    pub fn record(&mut self, d: &DynInst) -> Result<(), TraceError> {
        assert!(self.remaining > 0, "encoder received more records than declared");
        self.remaining -= 1;
        self.expected_ip = encode_record(&mut self.buf, self.expected_ip, d);
        self.crc_records = crc32_update(self.crc_records, &self.buf);
        self.records_len += self.buf.len() as u64;
        self.out.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Patches the real `stats` into the header, writes the CRC trailer
    /// and flushes. Until this returns the file is unreadable (zeroed
    /// stats, missing trailer) — callers must treat it as garbage, which
    /// the store's write-to-temp-then-rename finalize guarantees.
    ///
    /// # Panics
    ///
    /// Panics if fewer records were written than declared in the header.
    pub fn finish(mut self, stats: ExecStats) -> Result<(), TraceError> {
        assert_eq!(self.remaining, 0, "encoder finished before all declared records");
        let mut stats_bytes = [0u8; 40];
        for (i, v) in
            [stats.insts, stats.uops, stats.elided_calls, stats.wrapped_returns, stats.interrupts]
                .into_iter()
                .enumerate()
        {
            stats_bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        self.out.seek(SeekFrom::Start(self.stats_pos))?;
        self.out.write_all(&stats_bytes)?;
        let crc_header = crc32_update(self.crc_prefix, &stats_bytes);
        let crc = crc32_combine(crc_header, self.crc_records, self.records_len);
        self.out.seek(SeekFrom::Start(self.stats_pos + 40 + self.records_len))?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }
}

fn branch_kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::None => 0,
        BranchKind::CondDirect => 1,
        BranchKind::UncondDirect => 2,
        BranchKind::CallDirect => 3,
        BranchKind::IndirectJump => 4,
        BranchKind::IndirectCall => 5,
        BranchKind::Return => 6,
    }
}

fn branch_kind_from_code(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::None,
        1 => BranchKind::CondDirect,
        2 => BranchKind::UncondDirect,
        3 => BranchKind::CallDirect,
        4 => BranchKind::IndirectJump,
        5 => BranchKind::IndirectCall,
        6 => BranchKind::Return,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Streaming decoder.

/// Streaming trace decoder: an iterator of [`DynInst`]s over any byte
/// source. Reads one record at a time — a 30M-instruction replay touches
/// O(1) memory. The CRC trailer is verified after the final record; a
/// mismatch (or any truncation / field corruption) surfaces as an `Err`
/// item, never a panic.
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, Trace, TraceReader};
///
/// let trace = standard_traces()[0].capture(500);
/// let mut buf = Vec::new();
/// trace.save(&mut buf).unwrap();
/// let mut reader = TraceReader::new(buf.as_slice()).unwrap();
/// assert_eq!(reader.name(), trace.name());
/// assert_eq!(reader.inst_count(), 500);
/// let insts: Result<Vec<_>, _> = reader.by_ref().collect();
/// assert_eq!(insts.unwrap(), trace.insts());
/// ```
pub struct TraceReader<R: Read> {
    input: R,
    crc: u32,
    name: String,
    count: u64,
    stats: ExecStats,
    expected_ip: Addr,
    remaining: u64,
    /// Set after the trailer has been verified (or an error was yielded);
    /// the iterator is fused from then on.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on bad magic or malformed header
    /// fields, [`TraceError::Version`] on a format-version mismatch.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::Corrupt("bad magic (not an XBT trace file)".into()));
        }
        let mut crc = 0u32;
        let version = read_u32(&mut input, &mut crc)?;
        if version != FORMAT_VERSION {
            return Err(TraceError::Version(version));
        }
        let name_len = read_u16(&mut input, &mut crc)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        input.read_exact(&mut name_bytes)?;
        crc = crc32_update(crc, &name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("trace name is not UTF-8".into()))?;
        let count = read_u64(&mut input, &mut crc)?;
        let mut s = [0u64; 5];
        for v in &mut s {
            *v = read_u64(&mut input, &mut crc)?;
        }
        let stats = ExecStats {
            insts: s[0],
            uops: s[1],
            elided_calls: s[2],
            wrapped_returns: s[3],
            interrupts: s[4],
        };
        Ok(TraceReader {
            input,
            crc,
            name,
            count,
            stats,
            expected_ip: Addr::NULL,
            remaining: count,
            done: false,
        })
    }

    /// Trace name from the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared dynamic instruction count.
    pub fn inst_count(&self) -> u64 {
        self.count
    }

    /// Capture-time executor statistics from the header.
    pub fn exec_stats(&self) -> ExecStats {
        self.stats
    }

    fn read_record(&mut self) -> Result<DynInst, TraceError> {
        let flags = self.read_byte()?;
        if flags & 0x80 != 0 {
            return Err(TraceError::Corrupt("reserved flag bit set".into()));
        }
        let branch = branch_kind_from_code(flags & 0x07)
            .ok_or_else(|| TraceError::Corrupt("invalid branch kind".into()))?;
        let shape = self.read_byte()?;
        let len = shape & 0x0F;
        let uops = (shape >> 4) + 1;
        if len == 0 || uops > Inst::MAX_UOPS || shape >> 6 != 0 {
            return Err(TraceError::Corrupt(format!("invalid shape byte {shape:#04x}")));
        }
        let ip = if flags & FLAG_IP_EXPECTED != 0 {
            self.expected_ip
        } else {
            let delta = unzigzag(self.read_varint()?);
            Addr::new(self.expected_ip.raw().wrapping_add(delta as u64))
        };
        let wants_target = matches!(
            branch,
            BranchKind::CondDirect | BranchKind::UncondDirect | BranchKind::CallDirect
        );
        if wants_target != (flags & FLAG_HAS_TARGET != 0) {
            return Err(TraceError::Corrupt(format!(
                "target presence contradicts branch kind {branch:?}"
            )));
        }
        let target = if flags & FLAG_HAS_TARGET != 0 {
            let delta = unzigzag(self.read_varint()?);
            Some(Addr::new(ip.raw().wrapping_add(delta as u64)))
        } else {
            None
        };
        let inst = Inst::new(ip, len, uops, branch, target);
        let next_ip = if flags & FLAG_NEXT_SEQ != 0 {
            inst.next_seq()
        } else {
            let delta = unzigzag(self.read_varint()?);
            Addr::new(ip.raw().wrapping_add(delta as u64))
        };
        self.expected_ip = next_ip;
        Ok(DynInst { inst, taken: flags & FLAG_TAKEN != 0, next_ip })
    }

    fn read_byte(&mut self) -> Result<u8, TraceError> {
        let mut b = [0u8; 1];
        self.input.read_exact(&mut b)?;
        self.crc = crc32_update(self.crc, &b);
        Ok(b[0])
    }

    fn read_varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_byte()?;
            if shift >= 63 && byte > 1 {
                return Err(TraceError::Corrupt("varint overflows 64 bits".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn read_trailer(&mut self) -> Result<(), TraceError> {
        let mut t = [0u8; 4];
        self.input.read_exact(&mut t)?;
        let stored = u32::from_le_bytes(t);
        if stored != self.crc {
            return Err(TraceError::Corrupt(format!(
                "CRC mismatch: stored {stored:#010x}, computed {:#010x}",
                self.crc
            )));
        }
        Ok(())
    }
}

fn read_u16<R: Read>(input: &mut R, crc: &mut u32) -> Result<u16, TraceError> {
    let mut b = [0u8; 2];
    input.read_exact(&mut b)?;
    *crc = crc32_update(*crc, &b);
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(input: &mut R, crc: &mut u32) -> Result<u32, TraceError> {
    let mut b = [0u8; 4];
    input.read_exact(&mut b)?;
    *crc = crc32_update(*crc, &b);
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(input: &mut R, crc: &mut u32) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    input.read_exact(&mut b)?;
    *crc = crc32_update(*crc, &b);
    Ok(u64::from_le_bytes(b))
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<DynInst, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.remaining == 0 {
            self.done = true;
            return match self.read_trailer() {
                Ok(()) => None,
                Err(e) => Some(Err(e)),
            };
        }
        self.remaining -= 1;
        match self.read_record() {
            Ok(d) => Some(Ok(d)),
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // +1 for the possible trailing CRC error item.
            (self.remaining as usize, Some(self.remaining as usize + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_traces, Trace};

    fn sample_trace() -> Trace {
        standard_traces()[0].capture(2_000)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        buf
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental == one-shot.
        let a = crc32_update(crc32_update(0, b"1234"), b"56789");
        assert_eq!(a, 0xCBF4_3926);
    }

    #[test]
    fn crc32_combine_matches_sequential() {
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 2, 7, 40, 255, 256, 1024, 4095, 4096] {
            let (a, b) = data.split_at(split);
            let combined = crc32_combine(crc32(a), crc32(b), b.len() as u64);
            assert_eq!(combined, whole, "split at {split}");
        }
        // Empty-prefix and known-vector sanity.
        assert_eq!(crc32_combine(crc32(b"1234"), crc32(b"56789"), 5), 0xCBF4_3926);
    }

    #[test]
    fn stream_encoder_is_byte_identical_to_encoder() {
        let t = sample_trace();
        let resident = encode(&t);
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut enc = StreamEncoder::new(&mut cursor, t.name(), t.inst_count() as u64).unwrap();
        for d in t.insts() {
            enc.record(d).unwrap();
        }
        enc.finish(t.exec_stats()).unwrap();
        assert_eq!(cursor.into_inner(), resident);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let buf = encode(&t);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.name(), t.name());
        assert_eq!(r.inst_count(), t.inst_count() as u64);
        assert_eq!(r.exec_stats(), t.exec_stats());
        let decoded: Vec<DynInst> = r.by_ref().map(|d| d.unwrap()).collect();
        assert_eq!(decoded, t.insts());
    }

    #[test]
    fn compact_relative_to_fixed_width() {
        // A connected trace should cost only a few bytes per instruction —
        // far below the ~26-byte fixed-width lower bound (ip, next_ip,
        // target, shape).
        let t = sample_trace();
        let buf = encode(&t);
        let per_inst = buf.len() as f64 / t.inst_count() as f64;
        assert!(per_inst < 6.0, "encoding too fat: {per_inst:.2} bytes/inst");
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        // Flip one byte at a time across a small file: every corruption
        // must surface as Err (CRC at minimum), never a panic, and never
        // a silently different stream.
        let t = standard_traces()[0].capture(50);
        let buf = encode(&t);
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x41;
            let outcome: Result<Vec<DynInst>, TraceError> = match TraceReader::new(bad.as_slice()) {
                Ok(r) => r.collect(),
                Err(e) => Err(e),
            };
            match outcome {
                Err(_) => {}
                Ok(decoded) => {
                    panic!("flip at byte {pos} went undetected ({} insts decoded)", decoded.len())
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let t = sample_trace();
        let buf = encode(&t);
        for cut in [3, 10, buf.len() / 2, buf.len() - 1] {
            let outcome: Result<Vec<DynInst>, TraceError> = match TraceReader::new(&buf[..cut]) {
                Ok(r) => r.collect(),
                Err(e) => Err(e),
            };
            assert!(outcome.is_err(), "truncation at {cut} went undetected");
        }
    }

    #[test]
    fn version_mismatch_is_reported() {
        let t = standard_traces()[0].capture(10);
        let mut buf = encode(&t);
        buf[4] = 99; // version field follows the 4-byte magic
        match TraceReader::new(buf.as_slice()) {
            Err(TraceError::Version(99)) => {}
            Err(other) => panic!("expected version error, got {other}"),
            Ok(_) => panic!("expected version error, got a reader"),
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x1234_5678_9ABC] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
