//! GSHARE conditional branch predictor.
//!
//! The paper simulates "a 16-bit history GSHARE predictor [McF93] for both
//! the XBC and the TC" (§4). The predictor XORs the global taken/not-taken
//! history with low branch-address bits to index a table of 2-bit saturating
//! counters.

use xbc_isa::Addr;

/// Accuracy statistics of a direction predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Correctly predicted branches.
    pub correct: u64,
    /// Mispredicted branches.
    pub incorrect: u64,
}

impl PredictorStats {
    /// Fraction of predictions that were correct (0.0 when idle).
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.incorrect;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// Configuration of a [`Gshare`] predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GshareConfig {
    /// Bits of global history (and log2 of the counter table size).
    pub history_bits: u32,
}

impl Default for GshareConfig {
    /// The paper's 16-bit-history gshare.
    fn default() -> Self {
        GshareConfig { history_bits: 16 }
    }
}

/// A gshare direction predictor: global history XOR branch IP indexes a
/// table of 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use xbc_predict::{Gshare, GshareConfig};
/// use xbc_isa::Addr;
///
/// let mut g = Gshare::new(GshareConfig { history_bits: 10 });
/// let ip = Addr::new(0x400);
/// // Train taken until the history register saturates and the index
/// // stabilizes.
/// for _ in 0..64 { g.update(ip, true); }
/// assert!(g.predict(ip));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>, // 2-bit counters, 0..=3; >=2 predicts taken
    history: u64,
    mask: u64,
    stats: PredictorStats,
}

impl Gshare {
    /// Creates a predictor with all counters weakly not-taken (1).
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or above 30.
    pub fn new(cfg: GshareConfig) -> Self {
        assert!(
            (1..=30).contains(&cfg.history_bits),
            "history_bits must be in 1..=30, got {}",
            cfg.history_bits
        );
        let size = 1usize << cfg.history_bits;
        Gshare {
            table: vec![1; size],
            history: 0,
            mask: (size - 1) as u64,
            stats: PredictorStats::default(),
        }
    }

    #[inline]
    fn index(&self, ip: Addr) -> usize {
        // Drop the low bit (instructions are at least byte-aligned but
        // branches cluster); XOR with history per McFarling.
        (((ip.raw() >> 1) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the conditional branch at `ip`.
    #[inline]
    pub fn predict(&self, ip: Addr) -> bool {
        self.table[self.index(ip)] >= 2
    }

    /// Updates the counter and global history with the resolved direction,
    /// recording accuracy against the prediction the current state makes.
    ///
    /// Returns `true` if the prediction was correct.
    pub fn update(&mut self, ip: Addr, taken: bool) -> bool {
        let idx = self.index(ip);
        let predicted = self.table[idx] >= 2;
        let correct = predicted == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.mask;
        correct
    }

    /// Accuracy statistics so far.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Current global history register value (for hashing in indirect
    /// predictors).
    pub fn history(&self) -> u64 {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_monotonic_branch() {
        let mut g = Gshare::new(GshareConfig::default());
        let ip = Addr::new(0x1234);
        for _ in 0..256 {
            g.update(ip, true);
        }
        assert!(g.predict(ip));
        // History churns through fresh (cold) indices for the first ~16
        // updates; after it saturates to all-ones the index is stable and
        // every prediction is correct.
        assert!(g.stats().accuracy() > 0.9, "accuracy {}", g.stats().accuracy());
    }

    #[test]
    fn learns_alternating_pattern_through_history() {
        let mut g = Gshare::new(GshareConfig { history_bits: 8 });
        let ip = Addr::new(0x88);
        let mut taken = false;
        // Warm up, then measure: history disambiguates the two phases.
        for _ in 0..200 {
            g.update(ip, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if g.predict(ip) == taken {
                correct += 1;
            }
            g.update(ip, taken);
            taken = !taken;
        }
        assert!(correct > 95, "history should capture period-2 pattern, got {correct}/100");
    }

    #[test]
    fn initial_state_predicts_not_taken() {
        let g = Gshare::new(GshareConfig { history_bits: 4 });
        assert!(!g.predict(Addr::new(0)));
    }

    #[test]
    fn update_reports_correctness() {
        let mut g = Gshare::new(GshareConfig { history_bits: 4 });
        // counter starts at 1 => predicts NT; first update taken is incorrect.
        assert!(!g.update(Addr::new(2), true));
        let s = g.stats();
        assert_eq!((s.correct, s.incorrect), (0, 1));
    }

    #[test]
    fn history_shifts() {
        let mut g = Gshare::new(GshareConfig { history_bits: 4 });
        g.update(Addr::new(2), true);
        g.update(Addr::new(2), false);
        g.update(Addr::new(2), true);
        assert_eq!(g.history() & 0b111, 0b101);
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn zero_history_rejected() {
        let _ = Gshare::new(GshareConfig { history_bits: 0 });
    }

    #[test]
    fn accuracy_idle_is_zero() {
        assert_eq!(PredictorStats::default().accuracy(), 0.0);
    }
}
