//! Frontend specifications: serializable descriptions of the frontend
//! configurations a sweep instantiates.

use crate::json::Json;
use xbc::{PromotionMode, XbcConfig, XbcFrontend};
use xbc_frontend::{
    BbtcConfig, BbtcFrontend, Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend,
    UopCacheConfig, UopCacheFrontend,
};

/// Which frontend to run, with the knobs the paper varies.
///
/// # Examples
///
/// ```
/// use xbc_sim::FrontendSpec;
///
/// let spec = FrontendSpec::Xbc { total_uops: 32 * 1024, ways: 2, promotion: true };
/// assert_eq!(spec.label(), "xbc-32k");
/// let fe = spec.instantiate();
/// assert_eq!(fe.name(), "xbc");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontendSpec {
    /// Instruction-cache-only baseline (§2.1).
    Ic,
    /// Decoded (uop) cache baseline (§2.2).
    UopCache {
        /// Total uop-slot capacity.
        total_uops: usize,
    },
    /// Block-based trace cache baseline (§2.4).
    Bbtc {
        /// Block-cache capacity in uop slots.
        total_uops: usize,
    },
    /// Trace-cache baseline (§2.3).
    Tc {
        /// Total uop capacity.
        total_uops: usize,
        /// Associativity.
        ways: usize,
    },
    /// The eXtended Block Cache (§3).
    Xbc {
        /// Total uop capacity.
        total_uops: usize,
        /// Ways per bank.
        ways: usize,
        /// Branch promotion on/off.
        promotion: bool,
    },
}

impl FrontendSpec {
    /// The paper's headline TC: 32K uops, 4-way.
    pub fn tc_default() -> Self {
        FrontendSpec::Tc { total_uops: 32 * 1024, ways: 4 }
    }

    /// The paper's headline XBC: 32K uops, 2-way banks, promotion on.
    pub fn xbc_default() -> Self {
        FrontendSpec::Xbc { total_uops: 32 * 1024, ways: 2, promotion: true }
    }

    /// Short label used in report tables, e.g. `"xbc-32k"`.
    pub fn label(&self) -> String {
        fn k(n: usize) -> String {
            if n.is_multiple_of(1024) {
                format!("{}k", n / 1024)
            } else {
                n.to_string()
            }
        }
        match self {
            FrontendSpec::Ic => "ic".to_owned(),
            FrontendSpec::UopCache { total_uops } => format!("uop-{}", k(*total_uops)),
            FrontendSpec::Bbtc { total_uops } => format!("bbtc-{}", k(*total_uops)),
            FrontendSpec::Tc { total_uops, ways: 4 } => format!("tc-{}", k(*total_uops)),
            FrontendSpec::Tc { total_uops, ways } => format!("tc-{}-w{ways}", k(*total_uops)),
            FrontendSpec::Xbc { total_uops, ways: 2, promotion: true } => {
                format!("xbc-{}", k(*total_uops))
            }
            FrontendSpec::Xbc { total_uops, ways, promotion } => {
                format!(
                    "xbc-{}-w{ways}{}",
                    k(*total_uops),
                    if *promotion { "" } else { "-nopromo" }
                )
            }
        }
    }

    /// Canonical identity string for cache keys. Unlike [`label`], this
    /// covers every field, so two distinct configurations can never
    /// share a key.
    ///
    /// [`label`]: FrontendSpec::label
    pub fn key(&self) -> String {
        format!("{self:?}")
    }

    /// Serializes this spec as a compact JSON object.
    pub fn to_json(&self) -> String {
        match *self {
            FrontendSpec::Ic => "{\"kind\":\"ic\"}".to_owned(),
            FrontendSpec::UopCache { total_uops } => {
                format!("{{\"kind\":\"uop\",\"total_uops\":{total_uops}}}")
            }
            FrontendSpec::Bbtc { total_uops } => {
                format!("{{\"kind\":\"bbtc\",\"total_uops\":{total_uops}}}")
            }
            FrontendSpec::Tc { total_uops, ways } => {
                format!("{{\"kind\":\"tc\",\"total_uops\":{total_uops},\"ways\":{ways}}}")
            }
            FrontendSpec::Xbc { total_uops, ways, promotion } => format!(
                "{{\"kind\":\"xbc\",\"total_uops\":{total_uops},\"ways\":{ways},\"promotion\":{promotion}}}"
            ),
        }
    }

    /// Reconstructs a spec from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let kind = j.get("kind").and_then(Json::as_str).ok_or("frontend spec missing kind")?;
        let uops = || {
            j.get("total_uops").and_then(Json::as_usize).ok_or("frontend spec missing total_uops")
        };
        let ways = || j.get("ways").and_then(Json::as_usize).ok_or("frontend spec missing ways");
        match kind {
            "ic" => Ok(FrontendSpec::Ic),
            "uop" => Ok(FrontendSpec::UopCache { total_uops: uops()? }),
            "bbtc" => Ok(FrontendSpec::Bbtc { total_uops: uops()? }),
            "tc" => Ok(FrontendSpec::Tc { total_uops: uops()?, ways: ways()? }),
            "xbc" => Ok(FrontendSpec::Xbc {
                total_uops: uops()?,
                ways: ways()?,
                promotion: j
                    .get("promotion")
                    .and_then(Json::as_bool)
                    .ok_or("frontend spec missing promotion")?,
            }),
            other => Err(format!("unknown frontend kind {other:?}")),
        }
    }

    /// Builds a cold frontend instance.
    pub fn instantiate(&self) -> Box<dyn Frontend + Send> {
        match *self {
            FrontendSpec::Ic => Box::new(IcFrontend::new(IcFrontendConfig::default())),
            FrontendSpec::UopCache { total_uops } => {
                Box::new(UopCacheFrontend::new(UopCacheConfig { total_uops, ..Default::default() }))
            }
            FrontendSpec::Bbtc { total_uops } => {
                Box::new(BbtcFrontend::new(BbtcConfig { total_uops, ..Default::default() }))
            }
            FrontendSpec::Tc { total_uops, ways } => Box::new(TraceCacheFrontend::new(TcConfig {
                total_uops,
                ways,
                ..Default::default()
            })),
            FrontendSpec::Xbc { total_uops, ways, promotion } => {
                let promotion = if promotion { PromotionMode::Chain } else { PromotionMode::Off };
                Box::new(XbcFrontend::new(XbcConfig {
                    total_uops,
                    ways,
                    promotion,
                    ..Default::default()
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(FrontendSpec::Ic.label(), "ic");
        assert_eq!(FrontendSpec::tc_default().label(), "tc-32k");
        assert_eq!(FrontendSpec::xbc_default().label(), "xbc-32k");
        assert_eq!(FrontendSpec::Tc { total_uops: 8192, ways: 1 }.label(), "tc-8k-w1");
        assert_eq!(
            FrontendSpec::Xbc { total_uops: 4096, ways: 2, promotion: false }.label(),
            "xbc-4k-w2-nopromo"
        );
        assert_eq!(FrontendSpec::UopCache { total_uops: 100 }.label(), "uop-100");
        assert_eq!(FrontendSpec::Bbtc { total_uops: 8192 }.label(), "bbtc-8k");
    }

    #[test]
    fn instantiation_names() {
        assert_eq!(FrontendSpec::Ic.instantiate().name(), "ic");
        assert_eq!(FrontendSpec::tc_default().instantiate().name(), "tc");
        assert_eq!(FrontendSpec::xbc_default().instantiate().name(), "xbc");
        assert_eq!(FrontendSpec::UopCache { total_uops: 32768 }.instantiate().name(), "uopcache");
        assert_eq!(FrontendSpec::Bbtc { total_uops: 32768 }.instantiate().name(), "bbtc");
    }

    #[test]
    fn json_roundtrip() {
        let specs = [
            FrontendSpec::Ic,
            FrontendSpec::UopCache { total_uops: 12288 },
            FrontendSpec::Bbtc { total_uops: 8192 },
            FrontendSpec::Tc { total_uops: 16384, ways: 4 },
            FrontendSpec::Xbc { total_uops: 16384, ways: 2, promotion: true },
            FrontendSpec::Xbc { total_uops: 4096, ways: 4, promotion: false },
        ];
        for spec in specs {
            let j = Json::parse(&spec.to_json()).unwrap();
            assert_eq!(FrontendSpec::from_json(&j).unwrap(), spec);
        }
        assert!(FrontendSpec::from_json(&Json::parse("{\"kind\":\"zap\"}").unwrap()).is_err());
    }

    #[test]
    fn keys_distinguish_all_fields() {
        let a = FrontendSpec::Xbc { total_uops: 16384, ways: 2, promotion: true };
        let b = FrontendSpec::Xbc { total_uops: 16384, ways: 2, promotion: false };
        assert_ne!(a.key(), b.key());
    }
}
