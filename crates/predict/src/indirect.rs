//! Indirect-branch target predictor.
//!
//! Plays the role of the paper's XiBTB ("predicts the next XB for XBs that
//! are ended by an indirect branch that takes more than a single target",
//! §3.5) and of the indirect-target side of the IC frontend's BTB. Generic
//! over the predicted payload: an address for the IC frontend, an XB pointer
//! for the XBC.
//!
//! The table is history-hashed (gshare-style) so polymorphic call sites with
//! path-correlated targets are predictable, with a plain last-target table
//! available by setting `history_bits = 0`.

use xbc_isa::Addr;

/// Statistics of an [`IndirectPredictor`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndirectStats {
    /// Lookups that produced some prediction.
    pub predictions: u64,
    /// Lookups with no entry.
    pub cold: u64,
    /// Updates that found the predicted payload equal to the outcome.
    pub correct: u64,
    /// Updates that found a different payload recorded.
    pub incorrect: u64,
}

impl IndirectStats {
    /// Accuracy over updates with an existing entry.
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.incorrect;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// A tagged, direct-mapped, history-hashed target table.
///
/// # Examples
///
/// ```
/// use xbc_predict::IndirectPredictor;
/// use xbc_isa::Addr;
///
/// let mut p: IndirectPredictor<Addr> = IndirectPredictor::new(10, 4);
/// let site = Addr::new(0x500);
/// p.update(site, 0, Addr::new(0x9000));
/// assert_eq!(p.predict(site, 0), Some(Addr::new(0x9000)));
/// ```
#[derive(Clone, Debug)]
pub struct IndirectPredictor<T> {
    entries: Vec<Option<(u64, T)>>, // (full tag, payload)
    index_mask: u64,
    history_bits: u32,
    stats: IndirectStats,
}

impl<T: Clone + PartialEq> IndirectPredictor<T> {
    /// Creates a predictor with `2^index_bits` entries, folding
    /// `history_bits` bits of supplied path history into the index.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or above 30, or if `history_bits`
    /// exceeds `index_bits`.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!((1..=30).contains(&index_bits), "index_bits must be in 1..=30");
        assert!(history_bits <= index_bits, "history_bits cannot exceed index_bits");
        let size = 1usize << index_bits;
        IndirectPredictor {
            entries: vec![None; size],
            index_mask: (size - 1) as u64,
            history_bits,
            stats: IndirectStats::default(),
        }
    }

    #[inline]
    fn slot(&self, ip: Addr, history: u64) -> (usize, u64) {
        let hist = history & ((1u64 << self.history_bits) - 1);
        let key = ip.raw();
        let idx = ((key ^ hist) & self.index_mask) as usize;
        (idx, key)
    }

    /// Predicts the payload for the indirect branch at `ip` under `history`.
    pub fn predict(&mut self, ip: Addr, history: u64) -> Option<T> {
        let (idx, tag) = self.slot(ip, history);
        match &self.entries[idx] {
            Some((t, payload)) if *t == tag => {
                self.stats.predictions += 1;
                Some(payload.clone())
            }
            _ => {
                self.stats.cold += 1;
                None
            }
        }
    }

    /// Records the resolved payload, measuring accuracy of what was stored.
    pub fn update(&mut self, ip: Addr, history: u64, actual: T) {
        let (idx, tag) = self.slot(ip, history);
        if let Some((t, payload)) = &self.entries[idx] {
            if *t == tag {
                if *payload == actual {
                    self.stats.correct += 1;
                } else {
                    self.stats.incorrect += 1;
                }
            }
        }
        self.entries[idx] = Some((tag, actual));
    }

    /// Accuracy statistics.
    pub fn stats(&self) -> IndirectStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_target_mode() {
        let mut p: IndirectPredictor<u32> = IndirectPredictor::new(8, 0);
        let ip = Addr::new(0x40);
        assert_eq!(p.predict(ip, 0), None);
        p.update(ip, 0, 7);
        assert_eq!(p.predict(ip, 0), Some(7));
        p.update(ip, 0, 9);
        assert_eq!(p.predict(ip, 0), Some(9));
        assert_eq!(p.stats().incorrect, 1);
    }

    #[test]
    fn history_separates_contexts() {
        let mut p: IndirectPredictor<u32> = IndirectPredictor::new(8, 4);
        let ip = Addr::new(0x80);
        p.update(ip, 0b0001, 111);
        p.update(ip, 0b0010, 222);
        assert_eq!(p.predict(ip, 0b0001), Some(111));
        assert_eq!(p.predict(ip, 0b0010), Some(222));
    }

    #[test]
    fn tag_rejects_aliases() {
        let mut p: IndirectPredictor<u32> = IndirectPredictor::new(2, 0); // 4 entries
        p.update(Addr::new(0x2), 0, 5);
        // 0x2>>1=1; 0x12>>1=9 -> same index (1) but different tag.
        assert_eq!(p.predict(Addr::new(0x12), 0), None);
        assert_eq!(p.stats().cold, 1);
    }

    #[test]
    fn zero_history_bits_ignores_history() {
        let mut p: IndirectPredictor<u32> = IndirectPredictor::new(6, 0);
        p.update(Addr::new(0x10), 0xFFFF, 3);
        assert_eq!(p.predict(Addr::new(0x10), 0x0), Some(3));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn history_wider_than_index_rejected() {
        let _: IndirectPredictor<u8> = IndirectPredictor::new(4, 8);
    }
}
