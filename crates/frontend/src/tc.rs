//! Trace-cache frontend (paper §2.3, evaluated in §4).
//!
//! The baseline the XBC is measured against: a 4-way set-associative cache
//! whose lines each hold a single trace of up to 16 uops with at most 3
//! conditional branches (the Rotenberg/Friendly model the paper cites).
//! Traces are *single-entry multiple-exit*, indexed by the IP of their
//! first instruction, and are **not** path associative: two traces starting
//! at the same IP cannot coexist — inserting one replaces the other.
//!
//! The hit-rate cost the paper attacks comes from exactly two properties
//! modeled faithfully here:
//!
//! * **redundancy** — the same uop is stored in every trace that happens to
//!   flow through it (different start points / alignments), and
//! * **fragmentation** — a short trace still occupies a full 16-uop line.

use crate::build::{BuildEngine, FillSink, Predictors, TimingConfig};
use crate::frontend::Frontend;
use crate::metrics::FrontendMetrics;
use crate::oracle::OracleStream;
use crate::probe::Probe;
use xbc_isa::BranchKind;
use xbc_obs::{CycleKind, D2bCause, Event, EventSink, MispredictKind, UopSource};
use xbc_predict::{BtbConfig, GshareConfig, IndirectPredictor};
use xbc_uarch::{DecoderConfig, ICacheConfig, SetAssoc};
use xbc_workload::DynInst;

/// Configuration of a [`TraceCacheFrontend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcConfig {
    /// Total uop capacity (lines × 16). The paper's headline size is 32K.
    pub total_uops: usize,
    /// Associativity (paper: 4-way).
    pub ways: usize,
    /// Uops per trace line (paper: 16).
    pub line_uops: usize,
    /// Maximum conditional branches per trace (paper: 3).
    pub max_cond_branches: usize,
    /// Build-path instruction cache.
    pub icache: ICacheConfig,
    /// Build-path BTB.
    pub btb: BtbConfig,
    /// Build-path decoder widths.
    pub decoder: DecoderConfig,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Conditional predictor (paper: 16-bit gshare).
    pub gshare: GshareConfig,
    /// Path associativity (Jacobson et al. — "Jaco97" in the paper, §2.3):
    /// traces are identified by their start IP *and* a fold of their
    /// embedded conditional directions, so multiple paths from one start
    /// IP coexist; a next-trace predictor (keyed by the previous trace and
    /// the global history) selects which variant to fetch. Off in the
    /// paper's baseline model.
    pub path_associative: bool,
    /// Embedded-direction bits folded into the trace identity when
    /// path-associative.
    pub path_bits: u32,
}

impl Default for TcConfig {
    /// The paper's baseline: 32K uops, 4-way, 16-uop lines, ≤3 branches.
    fn default() -> Self {
        TcConfig {
            total_uops: 32 * 1024,
            ways: 4,
            line_uops: 16,
            max_cond_branches: 3,
            icache: ICacheConfig::default(),
            btb: BtbConfig::default(),
            decoder: DecoderConfig::default(),
            timing: TimingConfig::default(),
            gshare: GshareConfig::default(),
            path_associative: false,
            path_bits: 6,
        }
    }
}

impl TcConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not divide evenly.
    pub fn sets(&self) -> usize {
        assert!(self.line_uops > 0 && self.ways > 0);
        let lines = self.total_uops / self.line_uops;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "total_uops must divide into ways × line_uops"
        );
        lines / self.ways
    }
}

/// One cached trace: the committed path segment it was built along.
#[derive(Clone, Debug)]
struct TraceLine {
    insts: Vec<DynInst>,
}

impl TraceLine {
    /// Fold of the embedded conditional directions (path identity bits).
    fn dir_fold(&self, bits: u32) -> u64 {
        let mut fold = 0u64;
        let mut n = 0;
        for d in &self.insts {
            if d.inst.branch == BranchKind::CondDirect {
                fold |= (d.taken as u64) << (n % bits.max(1));
                n += 1;
            }
        }
        fold & ((1 << bits) - 1)
    }
}

impl TraceLine {
    #[cfg_attr(not(test), allow(dead_code))]
    fn uops(&self) -> usize {
        self.insts.iter().map(|d| d.inst.uops as usize).sum()
    }
}

/// Fill unit: groups committed instructions into traces.
#[derive(Clone, Debug)]
struct TcFill {
    line_uops: usize,
    max_cond: usize,
    cur: Vec<DynInst>,
    uops: usize,
    conds: usize,
    done: Vec<TraceLine>,
}

impl TcFill {
    fn new(line_uops: usize, max_cond: usize) -> Self {
        TcFill { line_uops, max_cond, cur: Vec::new(), uops: 0, conds: 0, done: Vec::new() }
    }

    fn finalize(&mut self) {
        if !self.cur.is_empty() {
            self.done.push(TraceLine { insts: std::mem::take(&mut self.cur) });
            self.uops = 0;
            self.conds = 0;
        }
    }

    fn clear(&mut self) {
        self.cur.clear();
        self.uops = 0;
        self.conds = 0;
        self.done.clear();
    }
}

impl FillSink for TcFill {
    fn observe(&mut self, d: &DynInst) {
        if self.uops + d.inst.uops as usize > self.line_uops {
            self.finalize();
        }
        self.cur.push(*d);
        self.uops += d.inst.uops as usize;
        match d.inst.branch {
            BranchKind::CondDirect => {
                self.conds += 1;
                if self.conds >= self.max_cond {
                    self.finalize();
                }
            }
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return => {
                self.finalize()
            }
            _ => {}
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Build,
    Delivery,
}

/// The trace-cache frontend.
///
/// # Examples
///
/// ```
/// use xbc_frontend::{Frontend, TcConfig, TraceCacheFrontend};
/// use xbc_workload::standard_traces;
///
/// let trace = standard_traces()[0].capture(20_000);
/// let mut tc = TraceCacheFrontend::new(TcConfig::default());
/// let m = tc.run(&trace);
/// assert!(m.structure_uops > 0, "the TC must deliver something");
/// assert!(m.uop_miss_rate() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceCacheFrontend {
    cfg: TcConfig,
    cache: SetAssoc<TraceLine>,
    engine: BuildEngine,
    preds: Predictors,
    fill: TcFill,
    mode: Mode,
    /// Accepted structure uops not yet pushed through the renamer.
    pending_uops: usize,
    /// Resteer penalty to apply once `pending_uops` drains.
    pending_resteer: Option<u64>,
    /// Delivery-mode stall cycles outstanding.
    stall: u64,
    /// Identity key of the previously fetched/built trace.
    last_path: u64,
    /// Next-trace predictor (Jaco97): previous trace → the full identity
    /// key of the following trace (last-successor table; folding the noisy
    /// global history in only hurts on iid branches). Only consulted when
    /// path-associative.
    next_trace: IndirectPredictor<u64>,
}

impl TraceCacheFrontend {
    /// Creates a cold trace-cache frontend.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`TcConfig::sets`]).
    pub fn new(cfg: TcConfig) -> Self {
        let sets = cfg.sets();
        TraceCacheFrontend {
            cache: SetAssoc::new(sets, cfg.ways),
            engine: BuildEngine::new(cfg.icache, cfg.btb, cfg.decoder, cfg.timing),
            preds: Predictors::new(cfg.gshare),
            fill: TcFill::new(cfg.line_uops, cfg.max_cond_branches),
            mode: Mode::Build,
            pending_uops: 0,
            pending_resteer: None,
            stall: 0,
            last_path: 0,
            next_trace: IndirectPredictor::new(12, 0),
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &TcConfig {
        &self.cfg
    }

    /// Replaces the predictor complement (for predictor ablations); call
    /// before the first `run`.
    pub fn set_predictors(&mut self, preds: Predictors) {
        self.preds = preds;
    }

    /// Number of valid trace lines currently cached.
    pub fn lines_cached(&self) -> usize {
        self.cache.len()
    }

    /// Identity key of a trace: its start IP, plus (when path-associative)
    /// its embedded-direction fold in high bits so path variants share a
    /// set but carry distinct tags.
    fn trace_key(&self, ip: xbc_isa::Addr, dir_fold: u64) -> u64 {
        if self.cfg.path_associative {
            ip.raw() ^ (dir_fold << 40)
        } else {
            ip.raw()
        }
    }

    fn set_and_tag_for_key(&self, key: u64) -> (usize, u64) {
        let sets = self.cache.sets() as u64;
        ((key % sets) as usize, key / sets)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn set_and_tag(&self, ip: xbc_isa::Addr, dir_fold: u64) -> (usize, u64) {
        self.set_and_tag_for_key(self.trace_key(ip, dir_fold))
    }

    /// Finds the trace to fetch for the current oracle position. Without
    /// path associativity this is a plain start-IP lookup; with it, the
    /// next-trace predictor proposes a variant, validated against the
    /// fetch address, with the zero-fold variant as fallback.
    ///
    /// Returns the trace's identity key plus a line *index* into the cache
    /// (read it with `data_at`) rather than cloning the `TraceLine` — a hit
    /// used to copy the whole `Vec<DynInst>` every delivery cycle.
    fn lookup_next(&mut self, ip: xbc_isa::Addr) -> Option<(u64, usize)> {
        if !self.cfg.path_associative {
            let key = self.trace_key(ip, 0);
            let (set, tag) = self.set_and_tag_for_key(key);
            return self.cache.get_index(set, tag).map(|idx| (key, idx));
        }
        let hist = self.preds.dir.history();
        if let Some(key) = self.next_trace.predict(xbc_isa::Addr::new(self.last_path), hist) {
            let (set, tag) = self.set_and_tag_for_key(key);
            if let Some(idx) = self.cache.get_index(set, tag) {
                if self.cache.data_at(idx).insts[0].inst.ip == ip {
                    return Some((key, idx));
                }
            }
        }
        // Fallback: all variants share the set (the fold only perturbs tag
        // bits), so scan it for any trace starting at the fetch address —
        // the way-comparators match on the start IP in hardware.
        let (set, _) = self.set_and_tag_for_key(self.trace_key(ip, 0));
        let key = self
            .cache
            .set_entries(set)
            .find(|(_, l)| l.insts[0].inst.ip == ip)
            .map(|(_, l)| self.trace_key(ip, l.dir_fold(self.cfg.path_bits)))?;
        // Touch for LRU (the uncounted scan above doesn't).
        let (s, tag) = self.set_and_tag_for_key(key);
        let idx = self.cache.get_index(s, tag)?;
        Some((key, idx))
    }

    /// Records the observed trace succession for the next-trace predictor
    /// and rolls the path context forward.
    fn note_transition(&mut self, key: u64) {
        if self.cfg.path_associative {
            let hist = self.preds.dir.history();
            self.next_trace.update(xbc_isa::Addr::new(self.last_path), hist, key);
        }
        self.last_path = key;
    }

    /// Walks a trace line against the oracle, performing all predictor
    /// updates, and returns the number of uops accepted for delivery,
    /// any resteer penalty to charge after they drain, and the kind of
    /// mispredict that truncated the walk (if one did) — the caller
    /// turns that into the event/counter bump, keeping this walk free
    /// of accounting.
    fn walk_line(
        line: &TraceLine,
        oracle: &OracleStream<'_>,
        preds: &mut Predictors,
        timing: &TimingConfig,
    ) -> (usize, Option<u64>, Option<MispredictKind>) {
        let mut accepted = 0usize;
        for (j, td) in line.insts.iter().enumerate() {
            let Some(od) = oracle.peek(j) else {
                break; // end of trace capture
            };
            if td.inst.ip != od.inst.ip {
                // The embedded path diverged from the committed path at a
                // non-predicted point (stale line after self-modifying-like
                // replacement); stop before the divergence.
                break;
            }
            accepted += td.inst.uops as usize;
            let ip = td.inst.ip;
            match td.inst.branch {
                BranchKind::None => {}
                BranchKind::UncondDirect => {}
                BranchKind::CallDirect => {
                    preds.rsb.push(td.inst.next_seq());
                }
                BranchKind::CondDirect => {
                    let pred = preds.dir.predict(ip);
                    let correct = pred == od.taken;
                    preds.dir.update(ip, od.taken);
                    if !correct {
                        return (
                            accepted,
                            Some(timing.mispredict_penalty),
                            Some(MispredictKind::Cond),
                        );
                    }
                    if pred != td.taken {
                        // Correctly predicted off the embedded path: the
                        // rest of the line is the wrong way — truncate the
                        // fetch, no penalty.
                        return (accepted, None, None);
                    }
                }
                BranchKind::IndirectJump | BranchKind::IndirectCall => {
                    let hist = preds.dir.history();
                    let pred = preds.indirect.predict(ip, hist);
                    preds.indirect.update(ip, hist, od.next_ip);
                    if td.inst.branch == BranchKind::IndirectCall {
                        preds.rsb.push(td.inst.next_seq());
                    }
                    if pred != Some(od.next_ip) {
                        return (
                            accepted,
                            Some(timing.mispredict_penalty),
                            Some(MispredictKind::Target),
                        );
                    }
                    return (accepted, None, None); // traces end at indirects
                }
                BranchKind::Return => {
                    let pred = preds.rsb.pop();
                    if pred != Some(od.next_ip) {
                        return (
                            accepted,
                            Some(timing.mispredict_penalty),
                            Some(MispredictKind::Target),
                        );
                    }
                    return (accepted, None, None);
                }
            }
        }
        (accepted, None, None)
    }

    fn delivery_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        if self.stall > 0 {
            self.stall -= 1;
            probe.emit(Event::Cycle(CycleKind::Stall));
            return;
        }
        if self.pending_uops == 0 {
            debug_assert_eq!(oracle.uop_offset(), 0, "line fetch must start at an inst boundary");
            let ip = oracle.fetch_ip();
            let Some((key, idx)) = self.lookup_next(ip) else {
                // TC miss: back to build mode. The failed lookup costs one
                // cycle of nothing.
                probe.emit(Event::StructureMiss);
                probe.emit(Event::SwitchToBuild(D2bCause::StructureMiss));
                self.mode = Mode::Build;
                self.fill.clear();
                probe.emit(Event::Cycle(CycleKind::Stall));
                return;
            };
            self.note_transition(key);
            let line = self.cache.data_at(idx);
            let (accepted, resteer, mispredict) =
                Self::walk_line(line, oracle, &mut self.preds, &self.cfg.timing);
            if let Some(kind) = mispredict {
                probe.emit(Event::Mispredict(kind));
            }
            debug_assert!(accepted > 0, "a hit line always supplies its first instruction");
            self.pending_uops = accepted;
            self.pending_resteer = resteer;
        }
        // Push up to renamer-width uops of the accepted segment.
        let budget = self.cfg.timing.renamer_width.min(self.pending_uops);
        let mut delivered = 0;
        while delivered < budget {
            let n = oracle.take_uops(budget - delivered);
            debug_assert!(n > 0, "oracle drained while pending uops remain");
            delivered += n;
        }
        self.pending_uops -= delivered;
        if delivered > 0 {
            probe.emit(Event::Uops {
                src: UopSource::Structure,
                n: xbc_obs::saturate_u16(delivered),
            });
        }
        probe.emit(Event::Cycle(CycleKind::Delivery));
        if self.pending_uops == 0 {
            if let Some(penalty) = self.pending_resteer.take() {
                self.stall += penalty;
            }
        }
    }

    fn build_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        let kind = self.engine.cycle(oracle, &mut self.preds, probe, &mut self.fill);
        let completed: Vec<TraceLine> = std::mem::take(&mut self.fill.done);
        let built_any = !completed.is_empty();
        for line in completed {
            let start = line.insts[0].inst.ip;
            // Without path associativity the identity is the start IP
            // alone, so a same-start different-path trace replaces in
            // place (the SetAssoc same-tag path); with it, path variants
            // (distinguished by their direction fold) coexist across the
            // set's ways, and the next-trace predictor learns successions.
            let fold = line.dir_fold(self.cfg.path_bits);
            let key = self.trace_key(start, fold);
            let (set, tag) = self.set_and_tag_for_key(key);
            self.cache.insert(set, tag, line);
            self.note_transition(key);
        }
        // Head lookup once a trace completes (paper §2.3): hit ⇒ delivery.
        if built_any && !oracle.done() && oracle.uop_offset() == 0 {
            let ip = oracle.fetch_ip();
            if self.lookup_next(ip).is_some() {
                self.mode = Mode::Delivery;
                self.fill.clear();
                probe.emit(Event::SwitchToDelivery);
            }
        }
        probe.emit(Event::Cycle(kind));
    }

    fn step_probe<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        match self.mode {
            Mode::Build => self.build_cycle(oracle, probe),
            Mode::Delivery => self.delivery_cycle(oracle, probe),
        }
    }
}

impl Frontend for TraceCacheFrontend {
    fn name(&self) -> &str {
        "tc"
    }

    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics) {
        self.step_probe(oracle, &mut Probe::untraced(metrics));
    }

    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        self.step_probe(oracle, &mut Probe::traced(metrics, sink));
    }

    fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Build => "build",
            Mode::Delivery => "delivery",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::{Addr, Inst};
    use xbc_workload::{standard_traces, CondBehavior, ProgramBuilder, Trace};

    fn small_cfg() -> TcConfig {
        TcConfig { total_uops: 4096, ..TcConfig::default() }
    }

    /// A hot loop that fits trivially: after one build pass the TC should
    /// serve nearly everything.
    fn loop_trace(n: usize) -> Trace {
        let mut b = ProgramBuilder::new();
        for i in 0..6u64 {
            b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
        }
        b.push_cond(
            Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x100), 1);
        Trace::capture("loop", &p, 0, n)
    }

    #[test]
    fn geometry() {
        assert_eq!(TcConfig::default().sets(), 512);
        assert_eq!(small_cfg().sets(), 64);
    }

    #[test]
    fn hot_loop_is_served_from_tc() {
        let t = loop_trace(4000);
        let mut tc = TraceCacheFrontend::new(small_cfg());
        let m = tc.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert!(m.uop_miss_rate() < 0.05, "miss rate {}", m.uop_miss_rate());
        // 13-uop trace (6×2 + 1) drains in 2 cycles: 6.5 uops/cycle.
        let bw = m.delivery_bandwidth();
        assert!(bw > 5.0 && bw <= 8.0, "bandwidth {bw}");
    }

    #[test]
    fn delivers_whole_trace_exactly_once() {
        let t = standard_traces()[0].capture(30_000);
        let mut tc = TraceCacheFrontend::new(TcConfig::default());
        let m = tc.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert_eq!(m.cycles, m.build_cycles + m.delivery_cycles + m.stall_cycles);
    }

    #[test]
    fn smaller_cache_misses_more() {
        let t = standard_traces()[8].capture(60_000); // sysmark-like, big footprint
        let mut big =
            TraceCacheFrontend::new(TcConfig { total_uops: 65536, ..TcConfig::default() });
        let mut small =
            TraceCacheFrontend::new(TcConfig { total_uops: 2048, ..TcConfig::default() });
        let mb = big.run(&t);
        let ms = small.run(&t);
        assert!(
            ms.uop_miss_rate() > mb.uop_miss_rate(),
            "small {} vs big {}",
            ms.uop_miss_rate(),
            mb.uop_miss_rate()
        );
    }

    #[test]
    fn traces_respect_line_limits() {
        // Feed the fill unit directly.
        let mut fill = TcFill::new(16, 3);
        let mk = |ip: u64, uops: u8, br: BranchKind| DynInst {
            inst: match br {
                BranchKind::None => Inst::plain(Addr::new(ip), 1, uops),
                BranchKind::CondDirect => {
                    Inst::new(Addr::new(ip), 1, uops, br, Some(Addr::new(0x1000)))
                }
                _ => Inst::new(Addr::new(ip), 1, uops, br, None),
            },
            taken: false,
            next_ip: Addr::new(ip + 1),
        };
        // 5 insts of 4 uops: the 5th overflows 16 and must start a new line.
        for i in 0..5 {
            fill.observe(&mk(0x10 + i, 4, BranchKind::None));
        }
        assert_eq!(fill.done.len(), 1);
        assert_eq!(fill.done[0].uops(), 16);
        // Three conditional branches close a trace.
        fill.clear();
        for i in 0..3 {
            fill.observe(&mk(0x50 + i, 1, BranchKind::CondDirect));
        }
        assert_eq!(fill.done.len(), 1);
        assert_eq!(fill.done[0].insts.len(), 3);
        // A return closes immediately.
        fill.clear();
        fill.observe(&mk(0x80, 1, BranchKind::Return));
        assert_eq!(fill.done.len(), 1);
    }

    #[test]
    fn no_path_associativity_same_start_ip_replaces() {
        let cfg = small_cfg();
        let mut tc = TraceCacheFrontend::new(cfg);
        let mk_line = |ips: &[u64]| TraceLine {
            insts: ips
                .iter()
                .map(|&ip| DynInst {
                    inst: Inst::plain(Addr::new(ip), 1, 1),
                    taken: false,
                    next_ip: Addr::new(ip + 1),
                })
                .collect(),
        };
        let (set, tag) = tc.set_and_tag(Addr::new(0x100), 0);
        tc.cache.insert(set, tag, mk_line(&[0x100, 0x101]));
        tc.cache.insert(set, tag, mk_line(&[0x100, 0x102]));
        assert_eq!(tc.lines_cached(), 1, "same start IP may not coexist");
    }

    #[test]
    fn path_associativity_allows_same_start_traces() {
        let cfg = TcConfig { path_associative: true, ..small_cfg() };
        let mut tc = TraceCacheFrontend::new(cfg);
        let mk_line = |ips: &[u64]| TraceLine {
            insts: ips
                .iter()
                .map(|&ip| DynInst {
                    inst: Inst::plain(Addr::new(ip), 1, 1),
                    taken: false,
                    next_ip: Addr::new(ip + 1),
                })
                .collect(),
        };
        let (s1, t1) = tc.set_and_tag(Addr::new(0x100), 0xAAA);
        let (s2, t2) = tc.set_and_tag(Addr::new(0x100), 0xBBB);
        assert_eq!(s1, s2, "path variants share the set");
        assert_ne!(t1, t2, "but carry distinct tags");
        tc.cache.insert(s1, t1, mk_line(&[0x100, 0x101]));
        tc.cache.insert(s2, t2, mk_line(&[0x100, 0x102]));
        assert_eq!(tc.lines_cached(), 2, "two paths from one start coexist");
    }

    #[test]
    fn path_associative_tc_still_delivers_everything() {
        let t = standard_traces()[0].capture(30_000);
        let mut tc =
            TraceCacheFrontend::new(TcConfig { path_associative: true, ..TcConfig::default() });
        let m = tc.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
    }
}
