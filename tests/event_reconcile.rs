//! Event-stream ↔ metrics reconciliation, across every frontend.
//!
//! The observability layer's core contract: the aggregate counters are
//! *derivable from the event stream, bit-for-bit*. Because the live
//! probe and the [`Reconciler`] fold share one `apply_event`, this holds
//! by construction — these tests pin it end to end, plus the two
//! side-contracts: tracing must not perturb the simulation (traced and
//! untraced runs produce identical metrics), and traced sweeps must be
//! deterministic across thread counts (byte-identical event files).

use xbc::{XbcConfig, XbcFrontend, XbcInvariants};
use xbc_frontend::{
    BbtcConfig, BbtcFrontend, Frontend, IcFrontend, IcFrontendConfig, Reconciler, TcConfig,
    TraceCacheFrontend, UopCacheConfig, UopCacheFrontend,
};
use xbc_obs::{Event, VecSink};
use xbc_sim::{FrontendSpec, Sweep};
use xbc_workload::{standard_traces, TraceSpec};

fn all_frontends(total_uops: usize) -> Vec<Box<dyn Frontend>> {
    vec![
        Box::new(IcFrontend::new(IcFrontendConfig::default())),
        Box::new(UopCacheFrontend::new(UopCacheConfig { total_uops, ..Default::default() })),
        Box::new(TraceCacheFrontend::new(TcConfig { total_uops, ..Default::default() })),
        Box::new(BbtcFrontend::new(BbtcConfig { total_uops, ..Default::default() })),
        Box::new(XbcFrontend::new(XbcConfig { total_uops, ..Default::default() })),
    ]
}

#[test]
fn fold_of_events_equals_live_metrics_for_every_frontend_and_trace() {
    for spec in standard_traces() {
        let trace = spec.capture(6_000);
        for fe in &mut all_frontends(8192) {
            let mut sink = VecSink::new();
            let live = fe.run_traced(&trace, &mut sink);
            let folded = Reconciler::fold(sink.events.iter());
            assert_eq!(
                folded,
                live,
                "{} on {}: folding the event stream must reproduce the live metrics exactly",
                fe.name(),
                spec.name
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The traced step path must compute the same machine; the sink is
    // write-only. Compare against a fresh untraced frontend.
    let trace = standard_traces()[4].capture(20_000);
    for (traced, plain) in all_frontends(8192).iter_mut().zip(&mut all_frontends(8192)) {
        let mut sink = VecSink::new();
        let tm = traced.run_traced(&trace, &mut sink);
        let pm = plain.run(&trace);
        assert_eq!(tm, pm, "{}: tracing changed the simulated metrics", plain.name());
        assert!(!sink.events.is_empty(), "{}: traced run emitted no events", plain.name());
    }
}

#[test]
fn every_step_closes_exactly_one_cycle() {
    // The stream's framing convention: `Cycle` events are the cycle
    // delimiters, so their count is the cycle count, and every stream
    // ends on one (the last step's closer).
    let trace = standard_traces()[0].capture(5_000);
    for fe in &mut all_frontends(4096) {
        let mut sink = VecSink::new();
        let m = fe.run_traced(&trace, &mut sink);
        let cycle_events =
            sink.events.iter().filter(|e| matches!(e, Event::Cycle(_))).count() as u64;
        assert_eq!(cycle_events, m.cycles, "{}: one Cycle event per cycle", fe.name());
        assert!(
            matches!(sink.events.last(), Some(Event::Cycle(_))),
            "{}: a step's last event must be its Cycle closer",
            fe.name()
        );
    }
}

#[test]
fn d2b_causes_sum_to_delivery_to_build_on_every_frontend() {
    // Satellite fix for the cause-accounting hole: every delivery→build
    // switch must charge exactly one cause, on every frontend, so the
    // cause breakdown is a partition — `XbcInvariants::check_metrics`
    // is the reusable form of that check.
    for spec in standard_traces() {
        let trace = spec.capture(6_000);
        for fe in &mut all_frontends(8192) {
            let m = fe.run(&trace);
            XbcInvariants::check_metrics(&m).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", fe.name(), spec.name);
            });
            assert_eq!(
                m.d2b_cause_sum(),
                m.delivery_to_build,
                "{} on {}: d2b cause counters must partition the switch count",
                fe.name(),
                spec.name
            );
        }
    }
}

fn traced_sweep_file(threads: usize, path: &std::path::Path) {
    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(3).collect();
    let frontends = vec![
        FrontendSpec::Ic,
        FrontendSpec::Tc { total_uops: 8192, ways: 4 },
        FrontendSpec::Xbc { total_uops: 8192, ways: 2, promotion: true },
    ];
    let mut sweep = Sweep::new(traces, frontends, 4_000);
    sweep.progress = false;
    sweep.threads = threads;
    sweep.check = true; // reconcile every cell while we're at it
    sweep.trace_events = Some(path.to_string_lossy().into_owned());
    let rows = sweep.run();
    assert_eq!(rows.len(), 9);
}

#[test]
fn traced_sweep_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("xbc-event-reconcile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let single = dir.join("events-t1.jsonl");
    let parallel = dir.join("events-t0.jsonl");
    traced_sweep_file(1, &single);
    traced_sweep_file(0, &parallel);
    let a = std::fs::read(&single).unwrap();
    let b = std::fs::read(&parallel).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "event files must not depend on worker scheduling");
    // And the file is a valid, foldable xbc-events-v1 stream.
    let sections = xbc_obs::jsonl::parse_jsonl(std::str::from_utf8(&a).unwrap()).unwrap();
    assert_eq!(sections.len(), 9, "one section per (trace × frontend) cell");
    for s in &sections {
        let m = Reconciler::fold(s.events.iter());
        assert!(m.cycles > 0, "{} on {}: empty section", s.frontend, s.trace);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
